// NwsmEngine: execution of the nested windowed streaming model with
// three-level parallel and overlapped processing (paper §2.2, §4,
// Algorithms 1-4).
//
// One engine instance drives a query over a partitioned graph on the
// simulated cluster. Per superstep, each machine executes:
//
//   scatter  — streams its vertex chunks (vertex windows) and the matching
//              edge chunks (adjacency windows, prefetched asynchronously so
//              disk I/O overlaps compute), invoking adj_scatter per
//              adjacency record; updates are combined in NUMA-sub-chunk-
//              local gather buffers (LGB; CAS-free because sub-chunks own
//              disjoint destination ranges) and shipped to owner machines.
//              For k > 1, marked vertices of interest (voi) are fetched —
//              locally or over the fabric from remote disks — and the next
//              level is processed by mark-and-backward-traversal: the
//              parent index built from Mark() calls plays the role of the
//              backward traversal over the in-memory level-l window.
//   gather   — a concurrent global-gather task (Algorithm 2) accumulates
//              incoming updates into the in-memory GGB for the first
//              vertex chunk and spills the rest to q-1 disk partitions.
//   apply    — after the global barrier, spilled partitions are gathered
//              by a producer thread while the apply task consumes ready
//              chunks (Algorithms 3-4, double buffered).
//
// The engine never materializes more than its windows: all sizes derive
// from the memory model (Theorem 4.1). Callers should use
// TurboGraphSystem (core/system.h), which re-runs BBP when the query
// requires a finer q (Algorithm 1 lines 1-4).
//
// Every phase above is instrumented for the execution tracer
// (util/trace.h): `superstep`, `scatter`/`scatter.window`, `gather`,
// `apply`/`gather.spilled` and `allreduce` spans, one track per machine.
// docs/TRACING.md explains how to capture and read a timeline.

#ifndef TGPP_CORE_ENGINE_H_
#define TGPP_CORE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <barrier>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "algos/frontier.h"
#include "cluster/cluster.h"
#include "common/cancel_token.h"
#include "common/fault_injector.h"
#include "core/adjacency_service.h"
#include "core/app.h"
#include "core/codec.h"
#include "core/memory_model.h"
#include "graph/csr.h"
#include "obs/events.h"
#include "obs/export.h"
#include "partition/partitioner.h"
#include "util/bitmap.h"
#include "util/crc32.h"
#include "util/timer.h"
#include "util/trace.h"

namespace tgpp {

inline constexpr const char* kVertexAttrFileName = "vattr.bin";

// --- ScatterContext -------------------------------------------------------

template <typename V, typename U>
class NwsmEngine;

namespace engine_internal {

// Dense local gather buffer over one destination chunk range. Sub-chunk
// tasks write disjoint index ranges, so no synchronization is needed
// (the NUMA-aware CAS elimination of paper §3 / A.3).
template <typename U>
class DenseLgb {
 public:
  void Reset(VertexRange range) {
    range_ = range;
    values_.assign(range.size(), U{});
    present_.assign(range.size(), 0);
  }
  VertexRange range() const { return range_; }

  template <typename Combine>
  void Accumulate(VertexId dst, const U& val, const Combine& combine) {
    const uint64_t idx = dst - range_.begin;
    if (present_[idx]) {
      combine(values_[idx], val);
    } else {
      values_[idx] = val;
      present_[idx] = 1;
    }
  }

  // Serializes present entries as (vid, U) pairs after a 1-byte kind and a
  // count, clearing nothing (caller Resets).
  std::vector<uint8_t> Serialize() const {
    std::vector<uint8_t> payload;
    AppendPod<uint8_t>(&payload, 0);  // kind: data
    uint64_t count = 0;
    for (uint8_t p : present_) count += p;
    AppendPod<uint64_t>(&payload, count);
    for (uint64_t i = 0; i < present_.size(); ++i) {
      if (!present_[i]) continue;
      AppendPod<VertexId>(&payload, range_.begin + i);
      AppendPod<U>(&payload, values_[i]);
    }
    return payload;
  }

  uint64_t present_count() const {
    uint64_t count = 0;
    for (uint8_t p : present_) count += p;
    return count;
  }

  // Read access for the apply phase (values/flags indexed by
  // vid - range().begin).
  void ExposeForApply(const std::vector<U>** values,
                      const std::vector<uint8_t>** present) const {
    *values = &values_;
    *present = &present_;
  }

 private:
  VertexRange range_;
  std::vector<U> values_;
  std::vector<uint8_t> present_;
};

// Sparse LGB for the full adjacency-list mode: destinations span the whole
// ID space, so a fixed-capacity map is kept per task and flushed to the
// owner machines when it overflows (paper §4.1, full-list constraint 1).
template <typename U>
class SparseLgb {
 public:
  SparseLgb(size_t capacity, int p) : capacity_(capacity), p_(p) {}

  template <typename Combine, typename Flush>
  void Accumulate(VertexId dst, const U& val, const Combine& combine,
                  const Flush& flush) {
    auto [it, inserted] = map_.try_emplace(dst, val);
    if (!inserted) combine(it->second, val);
    if (map_.size() >= capacity_) FlushAll(flush);
  }

  // flush(owner_payloads): called with one payload vector per machine.
  template <typename Flush>
  void FlushAll(const Flush& flush) {
    if (map_.empty()) return;
    flush(map_);
    map_.clear();
  }

 private:
  size_t capacity_;
  int p_;
  std::unordered_map<VertexId, U> map_;
};

}  // namespace engine_internal

// --- Engine ----------------------------------------------------------------

// Ablation knobs (all defaults are the paper's design; the ablation bench
// turns them off one at a time) plus fault-tolerance policy
// (docs/FAULTS.md).
struct EngineOptions {
  // In-memory local gather: combine updates per destination chunk before
  // shipping (paper §4.1). Off = every generated update crosses the wire.
  bool in_memory_local_gather = true;
  // Asynchronous page read-ahead depth for adjacency windows (3-LPO's
  // disk/CPU overlap). 1 = synchronous reads.
  int read_ahead_pages = 4;
  // Checkpoint the vertex attributes + frontier every N supersteps
  // (0 = off). A failed superstep then rolls every machine back to the
  // last complete checkpoint epoch and replays.
  int checkpoint_every = 0;
  // Give up after this many rollbacks in one Run() (a persistent fault
  // would otherwise replay forever).
  int max_recovery_attempts = 3;
  // Deadline for the engine's blocking receives (gather, allreduce): a
  // lost message surfaces as Status::Timeout instead of a hung barrier.
  // <= 0 waits forever (the seed's behavior).
  int64_t recv_timeout_ms = 60000;
  // Failure detection (docs/FAULTS.md "Failure model & recovery"): when
  // heartbeat_timeout_ms > 0 the engine starts the fabric heartbeat
  // monitor for the duration of Run() and replaces the std::barrier
  // superstep barrier with a machine-0-coordinated failable barrier on
  // Tag(kTagBarrier), so a fail-stop machine surfaces as
  // Status::MachineLost within the timeout instead of wedging. 0 = off
  // (byte-identical behavior to the pre-detection engine) — unless a
  // `machine.kill` fault is armed, in which case Run() auto-enables
  // detection with these defaults to keep an unconfigured chaos run from
  // hanging.
  int64_t heartbeat_interval_ms = 0;
  int64_t heartbeat_timeout_ms = 0;
  // Resume from the latest on-disk checkpoint epoch (if any) instead of
  // superstep 0. Used by job-level retry: the failed attempt's
  // checkpoints confine how much work the re-run repeats.
  bool resume_from_checkpoint = false;
  // Deterministic execution: consume read-ahead pages in page order and
  // drain gathered updates in sender order. Makes floating-point
  // accumulation order — and thus results — bit-reproducible run to run,
  // which is what lets recovery claim *identical* results to a fault-free
  // run. Costs some overlap; off by default.
  bool deterministic = false;
  // Called after every completed superstep with that superstep's activity
  // deltas (obs/export.h) — the hook behind `tgpp run --progress`,
  // per-barrier --metrics-out refreshes, and the bench harness's JSONL
  // time series. Runs on the engine's driver thread between supersteps;
  // keep it cheap. Null = no per-superstep reporting.
  std::function<void(const obs::SuperstepRow&)> superstep_observer;
  // Work-efficient frontier policy (algos/frontier.h): push/pull
  // direction selection per superstep and sparse vs. dense scans per
  // vertex window. Defaults (always push, dense windows) reproduce the
  // engine's historical behavior exactly; pull supersteps additionally
  // require the app to provide pull_scatter and a symmetric graph
  // (docs/ALGORITHMS.md).
  FrontierOptions frontier;

  // --- Multi-query isolation (the job service, docs/SERVICE.md). A lone
  // engine per cluster can leave all four at their defaults; engines
  // sharing one Cluster must each get a disjoint tag base, a unique
  // scratch prefix, and a private barrier, or their messages, spill
  // files and barrier arrivals interleave.

  // Added to every fabric tag the engine (and its AdjacencyService)
  // uses. Tags 0-5 are the engine's own, 8-12 belong to the baselines;
  // the job service hands out bases starting at 16, stride 6.
  uint32_t fabric_tag_base = 0;
  // Prepended to every scratch file name this engine touches on machine
  // disks (vertex attributes, spill partitions, checkpoints) so
  // concurrent jobs on the same simulated disks never collide.
  std::string scratch_prefix;
  // Superstep barrier. Null = the cluster-wide barrier (single-engine
  // mode). Concurrent engines each bring their own std::barrier sized
  // num_machines: the shared cluster barrier would make unrelated jobs
  // wait for each other — and deadlock once their superstep counts
  // differ.
  std::barrier<>* job_barrier = nullptr;
  // Correlation key for the observability plane (docs/OBSERVABILITY.md):
  // stamped on every structured event this engine emits (superstep,
  // checkpoint, recovery, machine-lost) and set as the ambient job id on
  // the engine's worker threads, so fabric and buffer-pool events beneath
  // them attribute to this job too. 0 = standalone run (no job).
  uint64_t job_id = 0;
  // Cooperative cancellation + deadline, observed at superstep
  // boundaries: a fired token surfaces as Status::Cancelled /
  // Status::Timeout from Run() after the in-flight superstep completes.
  // Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

template <typename V, typename U>
class NwsmEngine {
 public:
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(std::is_trivially_copyable_v<U>);

  NwsmEngine(Cluster* cluster, const PartitionedGraph* pg,
             EngineOptions options = {})
      : cluster_(cluster), pg_(pg), options_(options) {
    states_.resize(cluster->num_machines());
    for (int m = 0; m < cluster->num_machines(); ++m) {
      states_[m] = std::make_unique<MachineState>();
      states_[m]->active.Resize(pg->MachineRange(m).size());
      states_[m]->next_active.Resize(pg->MachineRange(m).size());
    }
  }

  // The memory-model check of Algorithm 1 line 1: the q this query needs
  // on this cluster.
  Result<int> ComputeRequiredQ(const KWalkApp<V, U>& app) const {
    MemoryModelInput in;
    in.k = app.k;
    in.p = pg_->p;
    in.num_vertices = pg_->num_vertices;
    in.vertex_attr_bytes = sizeof(V);
    in.page_size = kPageSize;
    in.total_budget_bytes = cluster_->machine(0)->WindowMemoryBytes();
    return ComputeQMin(in);
  }

  // ProcessVertices: writes initial attributes to each machine's disk and
  // sets the initial frontier.
  Status Initialize(const KWalkApp<V, U>& app) {
    return cluster_->RunOnAll([&](int m) -> Status {
      return InitializeMachine(m, app);
    });
  }

  // Start(): runs supersteps until convergence or app.max_supersteps.
  // With options.checkpoint_every > 0, state is checkpointed every N
  // superstep boundaries and a retryable failure (Status::IsRetryable():
  // an injected crash, an unretryable disk error, a lost message, a
  // fail-stop machine) rolls all machines back to the last complete
  // epoch — reviving any machine the failure took down — and replays
  // from there (docs/FAULTS.md). Without a checkpoint a MachineLost
  // failure returns cleanly, bounded by the heartbeat timeout; the
  // machines stay down until the caller revives them (Fabric::Reset,
  // Cluster::ReviveAllMachines, or the job manager's retry path).
  Result<QueryStats> Run(KWalkApp<V, U>& app) {
    TGPP_ASSIGN_OR_RETURN(const int q_needed, ComputeRequiredQ(app));
    if (q_needed > pg_->q) {
      return Status::InvalidArgument(
          "query needs q=" + std::to_string(q_needed) +
          " but the graph is partitioned with q=" + std::to_string(pg_->q) +
          "; repartition first (TurboGraphSystem does this automatically)");
    }
    WallTimer timer;
    QueryStats stats;
    stats.q_used = pg_->q;
    // Driver-thread ambient job id: events emitted from Run() itself
    // (checkpoint, recovery, superstep) carry options_.job_id explicitly,
    // but layers we call into on this thread attribute through this.
    obs::SetCurrentJob(options_.job_id);
    global_aggregate_.store(0, std::memory_order_relaxed);

    // Failure detection: explicit options win; an armed `machine.kill`
    // rule auto-enables the defaults so an unconfigured chaos run fails
    // fast instead of wedging on a vanished machine.
    HeartbeatOptions hb;
    bool detect = options_.heartbeat_timeout_ms > 0;
    if (detect) hb.timeout_ms = options_.heartbeat_timeout_ms;
    if (options_.heartbeat_interval_ms > 0) {
      hb.interval_ms = options_.heartbeat_interval_ms;
    }
    if (!detect && fault::SpecContainsSite("machine.kill")) detect = true;
    detection_enabled_ = detect;
    struct HeartbeatGuard {
      Fabric* fabric = nullptr;
      ~HeartbeatGuard() {
        if (fabric != nullptr) fabric->StopHeartbeats();
      }
    } hb_guard;
    if (detect) {
      cluster_->fabric()->StartHeartbeats(hb);
      hb_guard.fabric = cluster_->fabric();
    }

    const int every = options_.checkpoint_every;
    int last_epoch = -1;  // epoch E = state at the start of superstep E
    int step = 0;
    if (every > 0 && options_.resume_from_checkpoint) {
      // Job-level retry resumes from whatever the failed attempt last
      // checkpointed instead of cold-restarting from superstep 0.
      const int found = FindLatestEpoch(app.max_supersteps);
      if (found >= 0) {
        TGPP_RETURN_IF_ERROR(RestoreEpoch(found));
        step = found;
        last_epoch = found;
        stats.resumed = true;
        obs::EmitEvent(obs::EventType::kResume, options_.job_id, -1, found);
      }
    }
    if (every > 0 && last_epoch < 0) {
      TGPP_RETURN_IF_ERROR(CheckpointEpoch(0));
      last_epoch = 0;
      ++stats.checkpoints;
      obs::EmitEvent(obs::EventType::kCheckpoint, options_.job_id, -1, 0);
    }
    int recovery_attempts = 0;
    int replay_until = step;  // supersteps below this are re-execution
    Direction prev_direction = Direction::kPush;
    // Baseline for per-superstep deltas: counters accumulated before this
    // Run (e.g. a warmup query) are not attributed to our first row.
    ObserverTotals seen = CaptureObserverTotals(0.0);
    while (step < app.max_supersteps) {
      // Cooperative cancellation / deadline: observed at superstep
      // boundaries only, so an in-flight superstep always runs to its
      // barrier — no machine is ever stranded mid-protocol. The caller
      // (the job service) releases the admitted budget on this return.
      if (options_.cancel != nullptr) {
        Status cancel_status = options_.cancel->Check();
        if (!cancel_status.ok()) {
          fault::SetSuperstep(-1);
          return cancel_status;
        }
      }
      fault::SetSuperstep(step);
      current_step_.store(step, std::memory_order_relaxed);
      global_active_.store(0, std::memory_order_relaxed);
      // Direction decision for this superstep (algos/frontier.h):
      // computed once on the driver from the shared frontier state, so
      // every machine agrees without a protocol round.
      const Direction dir = ChooseSuperstepDirection(app, prev_direction);
      current_direction_.store(dir == Direction::kPull ? 1 : 0,
                               std::memory_order_relaxed);
      WallTimer superstep_timer;
      Status status = cluster_->RunOnAll(
          [&](int m) -> Status { return MachineSuperstep(m, app); });
      const double superstep_seconds = superstep_timer.Seconds();
      if (!status.ok()) {
        if (status.IsMachineLost()) {
          // Emitted whether or not we can recover: the operator joins this
          // on job_id to learn which machine a failed job lost.
          obs::EmitEvent(obs::EventType::kEngineMachineLost,
                         options_.job_id, status.machine_id(), step);
        }
        if (last_epoch < 0 || !status.IsRetryable() ||
            recovery_attempts >= options_.max_recovery_attempts) {
          fault::SetSuperstep(-1);
          return status;
        }
        ++recovery_attempts;
        ++stats.recoveries;
        stats.recovered_superstep_distance += step - last_epoch;
        if (status.IsMachineLost()) {
          // Detection cost: the failed superstep's wall time spans kill →
          // heartbeat timeout → every survivor unblocked.
          stats.recovery_detect_seconds += superstep_seconds;
          // "Replace" the dead machine. In the simulated cluster the same
          // Machine revives with its disks intact — a process restart on
          // the same host; the checkpoint restore below rebuilds its
          // volatile state.
          cluster_->ReviveAllMachines();
        }
        trace::Instant("engine.recover", "engine", "epoch",
                       static_cast<uint64_t>(last_epoch), "failed_step",
                       static_cast<uint64_t>(step));
        obs::EmitEvent(obs::EventType::kRecovery, options_.job_id, -1, step,
                       nullptr, "epoch", static_cast<uint64_t>(last_epoch));
        // The failed superstep may have left half-delivered updates and
        // control traffic in flight; everything since the epoch is
        // recomputed, so the queues are drained wholesale.
        cluster_->fabric()->Reset();
        WallTimer restore_timer;
        Status restored = RestoreEpoch(last_epoch);
        stats.recovery_restore_seconds += restore_timer.Seconds();
        if (!restored.ok()) {
          fault::SetSuperstep(-1);
          return restored;
        }
        cluster_->machine(0)->metrics()->recoveries.Add(1);
        if (step > replay_until) replay_until = step;
        step = last_epoch;
        continue;
      }
      if (step < replay_until) {
        // This superstep only ran again because a recovery rolled us back
        // past it: its wall time is pure re-execution cost.
        stats.recovery_replay_seconds += superstep_seconds;
        cluster_->machine(0)->metrics()->recovery_replay_supersteps.Add(1);
      }
      stats.supersteps = step + 1;
      prev_direction = dir;
      if (dir == Direction::kPull) {
        ++stats.pull_supersteps;
      } else {
        ++stats.push_supersteps;
      }
      if (obs::EventsEnabled()) {
        obs::EmitEvent(obs::EventType::kSuperstep, options_.job_id, -1, step,
                       dir == Direction::kPull ? "pull" : "push", "active",
                       global_active_.load(std::memory_order_relaxed),
                       "dur_us",
                       static_cast<uint64_t>(superstep_seconds * 1e6));
      }
      if (options_.superstep_observer) {
        options_.superstep_observer(
            MakeSuperstepRow(step, timer.Seconds(), &seen));
      }
      if (global_active_.load(std::memory_order_relaxed) == 0) {
        // Staged kernels (delta-stepping buckets, k-core peeling phases)
        // advance their round here and reactivate in the next apply
        // pass; everyone else converges.
        if (!(app.on_quiescent && step + 1 < app.max_supersteps &&
              app.on_quiescent(step))) {
          break;
        }
      }
      ++step;
      if (every > 0 && step % every == 0 && step < app.max_supersteps) {
        Status ckpt = CheckpointEpoch(step);
        if (!ckpt.ok()) {
          fault::SetSuperstep(-1);
          return ckpt;
        }
        ++stats.checkpoints;
        obs::EmitEvent(obs::EventType::kCheckpoint, options_.job_id, -1,
                       step);
        RemoveEpoch(last_epoch);  // best-effort: bound disk usage
        last_epoch = step;
      }
    }
    fault::SetSuperstep(-1);
    stats.wall_seconds = timer.Seconds();
    stats.aggregate_sum = global_aggregate_.load(std::memory_order_relaxed);
    return stats;
  }

  // Gathers all vertex attributes, indexed by NEW vertex id (tests remap
  // through pg->new_to_old as needed).
  Status ReadAttributes(std::vector<V>* out) {
    out->assign(pg_->num_vertices, V{});
    std::mutex mu;
    return cluster_->RunOnAll([&](int m) -> Status {
      const VertexRange range = pg_->MachineRange(m);
      std::vector<V> chunk;
      TGPP_RETURN_IF_ERROR(ReadAttrRange(m, range, &chunk));
      std::lock_guard<std::mutex> lock(mu);
      std::copy(chunk.begin(), chunk.end(), out->begin() + range.begin);
      return Status::OK();
    });
  }

  uint64_t aggregate_sum() const {
    return global_aggregate_.load(std::memory_order_relaxed);
  }

  // --- Fault tolerance (paper A.3): checkpoint the vertex attribute data
  // and the active frontier to each machine's own disk; a failure is
  // recovered by rolling back to the latest checkpoint and replaying the
  // superstep loop. One file per machine:
  //
  //   CkptHeader | vertex attrs (V[range]) | frontier bitmap (1 bit/vertex)
  //
  // The body is CRC32-checksummed so a torn write (e.g. a crash mid
  // checkpoint) restores as kCorruption, never as silent garbage.

  struct CkptHeader {
    uint64_t magic = kCkptMagic;
    uint32_t version = 1;
    int32_t superstep = -1;      // epoch: next superstep after restore
    uint64_t attr_bytes = 0;
    uint64_t frontier_bytes = 0;
    uint64_t aggregate = 0;      // global aggregate at checkpoint time
    uint32_t body_crc = 0;
    uint32_t reserved = 0;
  };
  static_assert(std::is_trivially_copyable_v<CkptHeader>);
  static constexpr uint64_t kCkptMagic = 0x54677070436b7074ull;  // "TgppCkpt"

  Status Checkpoint(const std::string& tag) {
    const int32_t superstep = current_step_.load(std::memory_order_relaxed);
    const uint64_t aggregate =
        global_aggregate_.load(std::memory_order_relaxed);
    return cluster_->RunOnAll([&](int m) -> Status {
      return CheckpointMachine(m, tag, superstep, aggregate);
    });
  }

  Status Restore(const std::string& tag) {
    std::atomic<uint64_t> aggregate{0};
    TGPP_RETURN_IF_ERROR(cluster_->RunOnAll([&](int m) -> Status {
      CkptHeader header;
      TGPP_RETURN_IF_ERROR(RestoreMachine(m, tag, &header));
      aggregate.store(header.aggregate, std::memory_order_relaxed);
      return Status::OK();
    }));
    // All machines store the same value (written by one Checkpoint call).
    global_aggregate_.store(aggregate.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    return Status::OK();
  }

 private:
  struct MachineState {
    AtomicBitmap active;
    AtomicBitmap next_active;
    std::atomic<uint64_t> aggregate{0};
  };

  // Cumulative counter values already attributed to earlier superstep
  // rows; the next row reports (current cumulative) - (seen). After a
  // rollback the replayed superstep's work is counted again — the row
  // series then honestly shows the recovery's extra I/O and updates.
  struct ObserverTotals {
    uint64_t generated = 0;
    uint64_t sent = 0;
    uint64_t spilled = 0;
    uint64_t disk_bytes = 0;
    uint64_t net_bytes = 0;
    uint64_t scatter_cpu_nanos = 0;
    uint64_t gather_cpu_nanos = 0;
    uint64_t apply_cpu_nanos = 0;
    double elapsed = 0.0;
  };

  ObserverTotals CaptureObserverTotals(double elapsed) {
    ObserverTotals now;
    for (int m = 0; m < cluster_->num_machines(); ++m) {
      Machine* machine = cluster_->machine(m);
      now.generated += machine->metrics()->updates_generated.value();
      now.sent += machine->metrics()->updates_sent.value();
      now.spilled += machine->metrics()->updates_spilled.value();
      now.disk_bytes +=
          machine->disk()->bytes_read() + machine->disk()->bytes_written();
      now.scatter_cpu_nanos += machine->metrics()->scatter_cpu_nanos.value();
      now.gather_cpu_nanos += machine->metrics()->gather_cpu_nanos.value();
      now.apply_cpu_nanos += machine->metrics()->apply_cpu_nanos.value();
    }
    now.net_bytes = cluster_->fabric()->bytes_sent();
    now.elapsed = elapsed;
    return now;
  }

  obs::SuperstepRow MakeSuperstepRow(int step, double elapsed,
                                     ObserverTotals* seen) {
    const ObserverTotals now = CaptureObserverTotals(elapsed);
    obs::SuperstepRow row;
    row.superstep = step;
    // Frontier this superstep produced (= active entering the next one).
    row.active_vertices = global_active_.load(std::memory_order_relaxed);
    row.updates_generated = now.generated - seen->generated;
    row.updates_sent = now.sent - seen->sent;
    row.updates_spilled = now.spilled - seen->spilled;
    row.disk_bytes = now.disk_bytes - seen->disk_bytes;
    row.net_bytes = now.net_bytes - seen->net_bytes;
    row.buffer_hit_rate = cluster_->BufferPoolHitRate();
    row.superstep_seconds = elapsed - seen->elapsed;
    row.elapsed_seconds = elapsed;
    row.scatter_cpu_seconds =
        1e-9 * (now.scatter_cpu_nanos - seen->scatter_cpu_nanos);
    row.gather_cpu_seconds =
        1e-9 * (now.gather_cpu_nanos - seen->gather_cpu_nanos);
    row.apply_cpu_seconds =
        1e-9 * (now.apply_cpu_nanos - seen->apply_cpu_nanos);
    row.direction =
        current_direction_.load(std::memory_order_relaxed) ? "pull" : "push";
    *seen = now;
    return row;
  }

  // ---- frontier direction selection (algos/frontier.h) ----

  // A kernel can pull only in single-level partial mode with a
  // pull_scatter; everything else always pushes.
  bool PullCapable(const KWalkApp<V, U>& app) const {
    return app.k == 1 && app.mode == AdjMode::kPartial &&
           static_cast<bool>(app.pull_scatter);
  }

  Direction ChooseSuperstepDirection(const KWalkApp<V, U>& app,
                                     Direction prev) {
    if (!PullCapable(app) ||
        options_.frontier.direction == DirectionMode::kPush) {
      return Direction::kPush;
    }
    if (options_.frontier.direction == DirectionMode::kPull) {
      return Direction::kPull;
    }
    // kAuto: the Ligra/Beamer density rule over the global frontier.
    // O(active) per superstep — the frontier is exactly what the scatter
    // phase is about to iterate anyway.
    uint64_t frontier_vertices = 0;
    uint64_t frontier_degree = 0;
    for (int m = 0; m < cluster_->num_machines(); ++m) {
      const VertexId base = pg_->MachineRange(m).begin;
      states_[m]->active.ForEachSet([&](uint64_t bit) {
        ++frontier_vertices;
        frontier_degree += pg_->out_degree[base + bit];
      });
    }
    return ChooseDirection(prev, frontier_vertices, frontier_degree,
                           pg_->num_vertices, pg_->num_edges,
                           options_.frontier);
  }

  // ---- multi-query isolation helpers (see the EngineOptions block) ----

  uint32_t Tag(uint32_t tag) const { return options_.fabric_tag_base + tag; }

  std::string AttrFile() const {
    return options_.scratch_prefix + kVertexAttrFileName;
  }

  // The superstep barrier: the job's own when one was supplied, the
  // cluster-wide barrier otherwise.
  void JobBarrier() {
    if (options_.job_barrier != nullptr) {
      options_.job_barrier->arrive_and_wait();
    } else {
      cluster_->Barrier();
    }
  }

  // The failable superstep barrier. Without failure detection this is the
  // plain std::barrier (byte-identical to the historical engine). With
  // detection, arrivals and releases are fabric messages on
  // Tag(kTagBarrier) coordinated by machine 0 under receive deadlines, so
  // a machine that dies mid-protocol can never wedge the others: the
  // coordinator's RecvFor fails fast once the heartbeat monitor declares
  // the loss, and it still releases every survivor before reporting the
  // failure. Each machine sends exactly one arrival per round and cannot
  // start the next round until released, so FIFO per (src, dst, tag)
  // keeps consecutive rounds from interleaving.
  Status FailableBarrier(int m) {
    if (!detection_enabled_) {
      JobBarrier();
      return Status::OK();
    }
    trace::TraceSpan span("barrier.wait", "cluster");
    Fabric* fabric = cluster_->fabric();
    Status result;
    if (m == 0) {
      for (int i = 1; i < pg_->p; ++i) {
        Message msg;
        Status s = fabric->RecvFor(0, Tag(kTagBarrier), &msg,
                                   options_.recv_timeout_ms);
        if (!s.ok()) {
          result = s;
          break;
        }
      }
      // Release every peer even on failure — the flag tells them the
      // round failed, so nobody keeps waiting for protocol traffic.
      for (int i = 1; i < pg_->p; ++i) {
        std::vector<uint8_t> release;
        AppendPod<uint8_t>(&release, result.ok() ? 0 : 1);
        fabric->Send(0, i, Tag(kTagBarrier), std::move(release));
      }
    } else {
      std::vector<uint8_t> arrive;
      AppendPod<uint8_t>(&arrive, 0);
      fabric->Send(m, 0, Tag(kTagBarrier), std::move(arrive));
      Message release;
      Status s = fabric->RecvFor(m, Tag(kTagBarrier), &release,
                                 options_.recv_timeout_ms);
      if (!s.ok()) result = s;
      // A failed release needs no action here: the failure that caused it
      // is already carried in some machine's own superstep status.
    }
    return result;
  }

  // ---- vertex attribute windows (vertex streams) ----

  Status ReadAttrRange(int m, VertexRange range, std::vector<V>* out) {
    out->resize(range.size());
    if (range.size() == 0) return Status::OK();
    const VertexId base = pg_->MachineRange(m).begin;
    return cluster_->machine(m)->disk()->Read(
        AttrFile(), (range.begin - base) * sizeof(V), out->data(),
        out->size() * sizeof(V));
  }

  Status WriteAttrRange(int m, VertexRange range,
                        const std::vector<V>& data) {
    if (range.size() == 0) return Status::OK();
    const VertexId base = pg_->MachineRange(m).begin;
    return cluster_->machine(m)->disk()->Write(
        AttrFile(), (range.begin - base) * sizeof(V), data.data(),
        data.size() * sizeof(V));
  }

  Status InitializeMachine(int m, const KWalkApp<V, U>& app) {
    MachineState& state = *states_[m];
    state.active.ClearAll();
    state.next_active.ClearAll();
    state.aggregate.store(0, std::memory_order_relaxed);
    const VertexRange range = pg_->MachineRange(m);
    for (int c = 0; c < pg_->q; ++c) {
      const VertexRange chunk = pg_->VertexChunkRange(m, c);
      std::vector<V> attrs(chunk.size());
      for (uint64_t i = 0; i < chunk.size(); ++i) {
        const VertexId vid = chunk.begin + i;
        attrs[i] = V{};
        if (app.init && app.init(vid, attrs[i])) {
          state.active.Set(vid - range.begin);
        }
      }
      TGPP_RETURN_IF_ERROR(WriteAttrRange(m, chunk, attrs));
    }
    return Status::OK();
  }

  // ---- the superstep (Algorithm 1) ----

  Status MachineSuperstep(int m, KWalkApp<V, U>& app) {
    Machine* machine = cluster_->machine(m);
    // Ambient job id for this worker thread: structured events emitted
    // below us (fabric, buffer pool) attribute to this job without those
    // layers knowing about jobs. Reset naturally when another job's
    // engine runs its superstep on the same pool thread.
    obs::SetCurrentJob(options_.job_id);
    // Fail-stop injection: a killed machine vanishes — no scatter, no
    // done markers, no barrier arrivals (contrast with `crash` below,
    // which cooperatively walks the protocol skeleton). Survivors learn
    // of the loss from the fabric heartbeat monitor; with detection off
    // their receive deadlines are the backstop.
    if (fault::Hit("machine.kill", m)) {
      cluster_->KillMachine(m);
      return Status::MachineLost(
          m, current_step_.load(std::memory_order_relaxed));
    }
    if (!machine->alive()) {
      return Status::MachineLost(
          m, current_step_.load(std::memory_order_relaxed));
    }
    MachineState& state = *states_[m];
    const int q = pg_->q;
    trace::TraceSpan superstep_span("superstep", "engine");
    superstep_span.AddArg(
        "step", current_step_.load(std::memory_order_relaxed));

    // Every failure from here on is *carried* through the full superstep
    // skeleton (done markers, gather join, barriers, allreduce) rather
    // than returned early: a machine that bails out of the protocol
    // strands its peers in std::barrier forever. The phases themselves
    // are skipped once step_status is non-OK.
    Status step_status;

    // Injected machine crash: this machine loses the superstep (no
    // scatter, no apply) but keeps walking the protocol skeleton —
    // modeling a failed worker whose peers detect the failure at the
    // allreduce and roll back together.
    if (auto crash = fault::Hit("crash", m)) {
      (void)crash;
      step_status = Status::Aborted(
          "injected crash on machine " + std::to_string(m) +
          " at superstep " +
          std::to_string(current_step_.load(std::memory_order_relaxed)));
    }

    // Pre-superstep: truncate spill partitions.
    for (int c = 1; c < q && step_status.ok(); ++c) {
      step_status = machine->disk()->Truncate(SpillFileName(c), 0);
    }

    // Spawn the global gather task (Algorithm 1 lines 5-7). It runs even
    // on a failed machine: peers' updates addressed here must be drained
    // so *their* sends and done markers complete.
    GatherRuntime gather;
    gather.chunk0 = pg_->VertexChunkRange(m, 0);
    gather.ggb.Reset(gather.chunk0);
    std::thread gather_thread([&] {
      if (trace::Enabled()) {
        trace::SetCurrentMachine(m);
        trace::SetCurrentThreadName("m" + std::to_string(m) + ".gather");
      }
      obs::SetCurrentJob(options_.job_id);
      GlobalGatherLoop(m, app, &gather);
    });

    // Adjacency service answers remote full-list reads during scatter.
    std::unique_ptr<AdjacencyService> adj_service;
    if (app.mode == AdjMode::kFull) {
      adj_service = std::make_unique<AdjacencyService>(cluster_, pg_, m);
      adj_service->set_recv_timeout_ms(options_.recv_timeout_ms);
      adj_service->set_tag_base(options_.fabric_tag_base);
      adj_service->Start();
    }

    // Scatter phase (overlapped with the gather task).
    if (step_status.ok()) {
      trace::TraceSpan scatter_span("scatter", "engine");
      obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
      if (app.mode == AdjMode::kPartial) {
        step_status = current_direction_.load(std::memory_order_relaxed)
                          ? ScatterPull(m, app)
                          : ScatterPartial(m, app);
      } else {
        step_status = ScatterFull(m, app, adj_service.get());
      }
    }
    // Done markers to every machine (including self) end their gathers.
    for (int dst = 0; dst < pg_->p; ++dst) {
      std::vector<uint8_t> marker;
      AppendPod<uint8_t>(&marker, 1);  // kind: done
      cluster_->fabric()->Send(m, dst, Tag(kTagUpdates), std::move(marker));
    }
    gather_thread.join();
    if (step_status.ok()) step_status = gather.status;

    // GLOBALBARRIER (Algorithm 1 line 22): all updates are now gathered
    // in memory or on disk everywhere; remote adjacency reads are over.
    Status barrier_status = FailableBarrier(m);
    if (step_status.ok()) step_status = barrier_status;
    if (adj_service != nullptr) adj_service->Stop();

    // Gather spilled updates overlapped with apply (Algorithms 3-4).
    if (step_status.ok()) {
      step_status = ApplyPhase(m, app, &gather);
    }

    // Superstep epilogue: swap frontiers, allreduce activity + aggregate.
    // A failed machine's contribution is garbage, but recovery discards
    // all of this state anyway; what matters is that it participates.
    const VertexRange range = pg_->MachineRange(m);
    uint64_t local_active = state.next_active.CountSet();
    machine->metrics()->active_vertices.Set(
        static_cast<int64_t>(local_active));
    std::swap(state.active, state.next_active);
    state.next_active.Resize(range.size());

    const uint64_t local_agg =
        state.aggregate.exchange(0, std::memory_order_relaxed);
    Status reduce_status =
        Allreduce(m, local_active, local_agg, !step_status.ok());
    if (step_status.ok()) step_status = reduce_status;
    return step_status;
  }

  // ---- partial adjacency list mode scatter ----

  Status ScatterPartial(int m, KWalkApp<V, U>& app) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    const MachinePartition& part = pg_->machines[m];
    const VertexRange my_range = part.range;
    const int q = pg_->q;
    const int pq = pg_->p * q;

    TGPP_ASSIGN_OR_RETURN(
        PageFile file,
        PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));

    // chunks are ordered (i, j, sub): index of first sub-chunk of (i, j).
    auto chunk_at = [&](int i, int j, int sub) -> const EdgeChunkInfo& {
      return part.chunks[(static_cast<size_t>(i) * pq + j) * pg_->r + sub];
    };

    // Work-efficient frontier snapshot (algos/frontier.h): when sparse
    // windows are enabled, take a per-superstep view of the active set
    // that can answer the per-window count/degree queries cheaply, plus
    // a local adjacency reader and its memory budget for the sparse
    // (point-lookup) scan path.
    const FrontierOptions& fopt = options_.frontier;
    const bool sparse_enabled = fopt.sparse_windows && app.k == 1;
    FrontierView view;
    std::unique_ptr<AdjacencyService> sparse_adj;
    uint64_t sparse_adj_budget = 0;
    if (sparse_enabled) {
      view.Build(state.active,
                 my_range.size() /
                     std::max<uint64_t>(1, fopt.sparse_list_den));
      MemoryModelInput mm;
      mm.k = app.k;
      mm.p = pg_->p;
      mm.num_vertices = pg_->num_vertices;
      mm.vertex_attr_bytes = sizeof(V);
      mm.page_size = kPageSize;
      mm.total_budget_bytes = machine->WindowMemoryBytes();
      sparse_adj_budget = ComputeWindowSizes(mm, q).adj_window_bytes;
      sparse_adj = std::make_unique<AdjacencyService>(cluster_, pg_, m);
    }

    std::vector<V> vertex_window;
    for (int i = 0; i < q; ++i) {
      const VertexRange vr = pg_->VertexChunkRange(m, i);
      if (vr.size() == 0) continue;
      const uint64_t lo = vr.begin - my_range.begin;
      const uint64_t hi = vr.end - my_range.begin;
      // Frontier skip: no active source in this vertex window.
      const uint64_t active_in_window =
          sparse_enabled ? view.CountInRange(lo, hi)
                         : state.active.CountSetInRange(lo, hi);
      if (active_in_window == 0) continue;
      trace::TraceSpan window_span("scatter.window", "engine");
      window_span.AddArg("window", static_cast<uint64_t>(i));
      TGPP_RETURN_IF_ERROR(ReadAttrRange(m, vr, &vertex_window));

      // Per-window density decision: a sparse frontier's few sources are
      // fetched by point lookups instead of streaming every edge chunk
      // of the window.
      if (sparse_enabled && view.rep() == FrontierRep::kSparse) {
        const uint64_t active_degree = view.DegreeInRange(
            lo, hi,
            [&](uint64_t bit) { return pg_->out_degree[my_range.begin + bit]; });
        uint64_t window_edges = 0;
        for (int j = 0; j < pq; ++j) {
          for (int sub = 0; sub < pg_->r; ++sub) {
            window_edges += chunk_at(i, j, sub).num_edges;
          }
        }
        if (ChooseWindowMode(active_in_window, active_degree, window_edges,
                             fopt) == WindowMode::kSparse) {
          machine->metrics()->frontier_sparse_windows.Add(1);
          window_span.AddArg("mode", static_cast<uint64_t>(1));
          TGPP_RETURN_IF_ERROR(SparseWindowScatter(
              m, app, vr, vertex_window, view, sparse_adj.get(),
              sparse_adj_budget));
          continue;
        }
      }
      machine->metrics()->frontier_dense_windows.Add(1);

      for (int j = 0; j < pq; ++j) {
        uint64_t edges_in_chunk = 0;
        for (int sub = 0; sub < pg_->r; ++sub) {
          edges_in_chunk += chunk_at(i, j, sub).num_edges;
        }
        if (edges_in_chunk == 0) continue;

        engine_internal::DenseLgb<U> lgb;
        lgb.Reset(pg_->DstChunkRange(j));

        // NUMA-aware sub-chunk scheduling: one task per sub-chunk; the
        // sub-chunks' destination ranges are disjoint, so LGB updates are
        // CAS-free.
        // `remaining` must only change under done_mu: the cv and mutex
        // live on this stack frame, and a decrement outside the lock
        // lets the waiter observe zero and destroy them while the last
        // worker is still between its decrement and the notify.
        int remaining = pg_->r;
        std::mutex done_mu;
        std::condition_variable done_cv;
        Status sub_status;
        std::mutex status_mu;
        for (int sub = 0; sub < pg_->r; ++sub) {
          const EdgeChunkInfo& chunk = chunk_at(i, j, sub);
          machine->workers()->Submit([&, chunk] {
            Status s = ProcessPartialSubChunk(m, app, file, chunk, vr,
                                              vertex_window, &lgb);
            if (!s.ok()) {
              std::lock_guard<std::mutex> lock(status_mu);
              if (sub_status.ok()) sub_status = s;
            }
            std::lock_guard<std::mutex> lock(done_mu);
            if (--remaining == 0) done_cv.notify_all();
          });
        }
        {
          std::unique_lock<std::mutex> lock(done_mu);
          done_cv.wait(lock, [&] { return remaining == 0; });
        }
        TGPP_RETURN_IF_ERROR(sub_status);

        // AsyncSend(LGB): ship the combined updates to the owner of
        // destination chunk j (paper in-memory local gather).
        const uint64_t combined =
            options_.in_memory_local_gather ? lgb.present_count() : 0;
        if (combined > 0) {
          machine->metrics()->updates_sent.Add(combined);
          cluster_->fabric()->Send(m, j / q, Tag(kTagUpdates), lgb.Serialize());
        }
      }
    }
    return Status::OK();
  }

  Status ProcessPartialSubChunk(int m, KWalkApp<V, U>& app,
                                const PageFile& file,
                                const EdgeChunkInfo& chunk,
                                VertexRange vw_range,
                                const std::vector<V>& vertex_window,
                                engine_internal::DenseLgb<U>* lgb) {
    if (chunk.num_pages == 0 && chunk.delta_pages.empty()) {
      return Status::OK();
    }
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    const VertexId active_base = pg_->MachineRange(m).begin;

    ScatterContext<V, U> ctx;
    ctx.level_ = 1;
    ctx.superstep_ = current_step_.load(std::memory_order_relaxed);
    ctx.aggregate_ = &state.aggregate;
    // Ablation path: with local gather disabled, updates bypass the LGB
    // and are shipped raw (uncombined).
    std::vector<uint8_t> raw_updates;
    uint64_t raw_count = 0;
    if (options_.in_memory_local_gather) {
      ctx.update_fn_ = [&](VertexId dst, const U& val) {
        machine->metrics()->updates_generated.Add(1);
        lgb->Accumulate(dst, val, app.vertex_gather);
      };
    } else {
      ctx.update_fn_ = [&](VertexId dst, const U& val) {
        machine->metrics()->updates_generated.Add(1);
        AppendPod<VertexId>(&raw_updates, dst);
        AppendPod<U>(&raw_updates, val);
        ++raw_count;
      };
    }
    ctx.mark_fn_ = [](VertexId) {};  // partial mode is single level

    // Asynchronous read-ahead: page t+1 is in flight while page t is
    // scanned (the disk/CPU overlap of 3-LPO). Reads are submitted as
    // prefetches, so they land in shared buffer-pool frames pinned on
    // arrival — concurrent misses on distinct pages overlap inside the
    // pool, and pages surviving into the next superstep count as
    // bufferpool.prefetch_hits. Tickets are kept and drained before
    // returning: in-flight callbacks capture the local mu/cv/ready below,
    // so an early error return without the drain would be a
    // use-after-scope.
    // Base pages first, then any mutation delta pages (docs/DYNAMIC.md).
    const std::vector<uint64_t> pages = chunk.PageNumbers();
    const uint64_t count = pages.size();
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<uint64_t, PageHandle>> ready;
    std::vector<AsyncIoService::Ticket> tickets;
    tickets.reserve(count);

    auto submit_batch = [&](std::vector<uint64_t> page_nos) {
      tickets.push_back(machine->io()->SubmitReads(
          machine->buffer_pool(), &file, std::move(page_nos),
          [&](uint64_t no, PageHandle handle) {
            std::lock_guard<std::mutex> lock(mu);
            ready.emplace_back(no, std::move(handle));
            cv.notify_all();
          },
          /*prefetch=*/true));
    };
    auto submit = [&](uint64_t page_no) { submit_batch({page_no}); };

    const uint64_t read_ahead =
        static_cast<uint64_t>(std::max(1, options_.read_ahead_pages));
    // The initial window goes down in ONE batch so the device can merge
    // adjacent pages into vectored requests; refills stay single-page.
    uint64_t submitted = std::min(count, read_ahead);
    if (submitted > 0) {
      std::vector<uint64_t> window(pages.begin(), pages.begin() + submitted);
      submit_batch(std::move(window));
    }
    Status scan_status;
    for (uint64_t processed = 0; processed < count; ++processed) {
      std::pair<uint64_t, PageHandle> item;
      {
        std::unique_lock<std::mutex> lock(mu);
        if (options_.deterministic) {
          // Consume pages in page order so the scatter order (and any
          // order-dependent accumulation) is reproducible regardless of
          // I/O completion order.
          const uint64_t want = pages[processed];
          auto found = ready.end();
          cv.wait(lock, [&] {
            found = std::find_if(
                ready.begin(), ready.end(),
                [&](const auto& r) { return r.first == want; });
            return found != ready.end();
          });
          item = std::move(*found);
          ready.erase(found);
        } else {
          cv.wait(lock, [&] { return !ready.empty(); });
          item = std::move(ready.front());
          ready.pop_front();
        }
      }
      if (!item.second.valid()) {
        // Failed page read (the ticket drain below retrieves the cause).
        scan_status = Status::IOError("async page read failed");
        break;
      }
      if (submitted < count) {
        submit(pages[submitted]);
        ++submitted;
      }
      SlottedPageReader reader(item.second.data());
      // Never trust on-disk bytes: a corrupt slot directory must surface
      // as Status::Corruption, not as an out-of-bounds read.
      scan_status = reader.Validate();
      if (!scan_status.ok()) break;
      const uint32_t slots = reader.num_slots();
      for (uint32_t s = 0; s < slots; ++s) {
        const VertexId src = reader.SrcAt(s);
        if (src < vw_range.begin || src >= vw_range.end) {
          scan_status = Status::Corruption(
              "record src " + std::to_string(src) + " outside chunk range");
          break;
        }
        if (!state.active.Test(src - active_base)) continue;
        const V& attr = vertex_window[src - vw_range.begin];
        app.adj_scatter[1](ctx, src, attr, reader.DstsAt(s));
      }
      if (!scan_status.ok()) break;
    }
    for (auto& ticket : tickets) {
      Status s = ticket.Wait();
      if (!s.ok() && (scan_status.ok() || scan_status.message() ==
                                              "async page read failed")) {
        scan_status = s;  // the underlying cause beats the generic note
      }
    }
    TGPP_RETURN_IF_ERROR(scan_status);
    if (raw_count > 0) {
      std::vector<uint8_t> payload;
      AppendPod<uint8_t>(&payload, 0);  // kind: data
      AppendPod<uint64_t>(&payload, raw_count);
      payload.insert(payload.end(), raw_updates.begin(),
                     raw_updates.end());
      machine->metrics()->updates_sent.Add(raw_count);
      cluster_->fabric()->Send(m, chunk.dst_chunk / pg_->q, Tag(kTagUpdates),
                               std::move(payload));
    }
    return Status::OK();
  }

  // ---- sparse-window scatter (work-efficient push) ----

  // Scans one vertex window whose frontier is sparse: instead of
  // streaming all of the window's edge chunks, the few active sources'
  // full adjacency lists are materialized by point lookups through the
  // buffer pool (the same two-level page index ScatterFull uses) and
  // scattered directly. Valid for k == 1 partial-mode kernels, whose
  // scatter is per-edge decomposable — a full list is just the
  // concatenation of the record fragments the dense path would stream.
  //
  // Runs single-threaded per window (the frontier is tiny by
  // construction) and emits per-owner payloads in ascending source
  // order, so the result is deterministic independent of I/O completion
  // order.
  Status SparseWindowScatter(int m, KWalkApp<V, U>& app, VertexRange vr,
                             const std::vector<V>& vertex_window,
                             const FrontierView& view,
                             AdjacencyService* adj_service,
                             uint64_t adj_budget) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    const VertexRange my_range = pg_->MachineRange(m);

    std::vector<VertexId> pending;
    view.ForEachIn(vr.begin - my_range.begin, vr.end - my_range.begin,
                   [&](uint64_t bit) {
                     pending.push_back(my_range.begin + bit);
                   });

    // Insertion-ordered accumulation: combining per destination without
    // losing the ascending-source emission order keeps payloads
    // byte-stable run to run.
    std::vector<std::pair<VertexId, U>> acc;
    std::unordered_map<VertexId, size_t> slot_of;
    ScatterContext<V, U> ctx;
    ctx.level_ = 1;
    ctx.superstep_ = current_step_.load(std::memory_order_relaxed);
    ctx.aggregate_ = &state.aggregate;
    ctx.mark_fn_ = [](VertexId) {};
    ctx.update_fn_ = [&](VertexId dst, const U& val) {
      machine->metrics()->updates_generated.Add(1);
      auto [it, inserted] = slot_of.try_emplace(dst, acc.size());
      if (inserted) {
        acc.emplace_back(dst, val);
      } else {
        app.vertex_gather(acc[it->second].second, val);
      }
    };

    size_t pos = 0;
    while (pos < pending.size()) {
      uint64_t batch_bytes = 0;
      size_t end = pos;
      while (end < pending.size()) {
        const uint64_t bytes =
            (pg_->out_degree[pending[end]] + 2) * sizeof(VertexId);
        if (end > pos && batch_bytes + bytes > adj_budget) break;
        batch_bytes += bytes;
        ++end;
      }
      AdjBatch batch;
      TGPP_RETURN_IF_ERROR(adj_service->MaterializeLocal(
          std::span<const VertexId>(pending.data() + pos, end - pos),
          &batch));
      for (size_t idx = 0; idx < batch.size(); ++idx) {
        const VertexId vid = batch.vids[idx];
        app.adj_scatter[1](ctx, vid, vertex_window[vid - vr.begin],
                           batch.Neighbors(idx));
      }
      pos = end;
    }

    // Ship per owner machine (same wire format as the raw/full paths).
    std::vector<std::vector<uint8_t>> per_owner(pg_->p);
    std::vector<uint64_t> counts(pg_->p, 0);
    for (const auto& [vid, val] : acc) {
      const int owner = pg_->OwnerOf(vid);
      if (per_owner[owner].empty()) {
        AppendPod<uint8_t>(&per_owner[owner], 0);  // kind: data
        AppendPod<uint64_t>(&per_owner[owner], 0);  // patched below
      }
      AppendPod<VertexId>(&per_owner[owner], vid);
      AppendPod<U>(&per_owner[owner], val);
      ++counts[owner];
    }
    for (int dst = 0; dst < pg_->p; ++dst) {
      if (per_owner[dst].empty()) continue;
      std::memcpy(per_owner[dst].data() + 1, &counts[dst],
                  sizeof(uint64_t));
      machine->metrics()->updates_sent.Add(counts[dst]);
      cluster_->fabric()->Send(m, dst, Tag(kTagUpdates),
                               std::move(per_owner[dst]));
    }
    return Status::OK();
  }

  // ---- pull-direction scatter (direction-optimizing supersteps) ----

  // Beamer-style pull on src-major chunked storage: every machine first
  // allgathers the frontier bitmaps (each machine's active set, packed
  // like a checkpoint frontier, on the dedicated kTagFrontier channel),
  // then serially scans its own edge chunks interpreting each record's
  // source u as the *pulling* vertex — valid on symmetric graphs, where
  // u's out-list fragments equal its in-list fragments. The kernel's
  // pull_scatter early-exits on the first frontier neighbor; once a
  // vertex updates itself it is "claimed" and its remaining records this
  // superstep are skipped, as are records of vertices whose value is
  // final (pull_done). All updates target local vertices, so they are
  // combined in a window-sized LGB and delivered to self — pull
  // supersteps ship zero update bytes over the fabric.
  //
  // The scan is serial per machine: in pull mode sub-chunks share source
  // ranges (every chunk of window i touches the same pulling vertices),
  // so the dense path's CAS-free parallelism does not apply; the early
  // exits are what make the superstep cheap.
  Status ScatterPull(int m, KWalkApp<V, U>& app) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    const MachinePartition& part = pg_->machines[m];
    const VertexRange my_range = part.range;
    const int q = pg_->q;
    const int pq = pg_->p * q;

    // Frontier allgather. n/8 bytes per peer — the (honestly accounted)
    // price of a dense superstep, in place of its update traffic.
    std::vector<uint8_t> mine((my_range.size() + 7) / 8, 0);
    state.active.ForEachSet([&](uint64_t bit) {
      mine[bit >> 3] |= static_cast<uint8_t>(1) << (bit & 7);
    });
    for (int peer = 0; peer < pg_->p; ++peer) {
      if (peer == m) continue;
      cluster_->fabric()->Send(m, peer, Tag(kTagFrontier), mine);
    }
    Frontier global(pg_->num_vertices, /*sparse_capacity=*/0);
    state.active.ForEachSet(
        [&](uint64_t bit) { global.Add(my_range.begin + bit); });
    for (int received = 0; received + 1 < pg_->p; ++received) {
      Message msg;
      TGPP_RETURN_IF_ERROR(cluster_->fabric()->RecvFor(
          m, Tag(kTagFrontier), &msg, options_.recv_timeout_ms));
      const VertexRange peer_range = pg_->MachineRange(msg.src);
      for (uint64_t bit = 0; bit < peer_range.size(); ++bit) {
        if ((msg.payload[bit >> 3] >> (bit & 7)) & 1) {
          global.Add(peer_range.begin + bit);
        }
      }
    }
    const std::function<bool(VertexId)> in_frontier =
        [&global](VertexId v) { return global.Test(v); };

    TGPP_ASSIGN_OR_RETURN(
        PageFile file,
        PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));
    auto chunk_at = [&](int i, int j, int sub) -> const EdgeChunkInfo& {
      return part.chunks[(static_cast<size_t>(i) * pq + j) * pg_->r + sub];
    };

    std::vector<V> vertex_window;
    std::vector<uint8_t> claimed;
    for (int i = 0; i < q; ++i) {
      const VertexRange vr = pg_->VertexChunkRange(m, i);
      if (vr.size() == 0) continue;
      trace::TraceSpan window_span("scatter.window", "engine");
      window_span.AddArg("window", static_cast<uint64_t>(i));
      window_span.AddArg("mode", static_cast<uint64_t>(2));
      TGPP_RETURN_IF_ERROR(ReadAttrRange(m, vr, &vertex_window));

      engine_internal::DenseLgb<U> lgb;
      lgb.Reset(vr);
      claimed.assign(vr.size(), 0);
      ScatterContext<V, U> ctx;
      ctx.level_ = 1;
      ctx.superstep_ = current_step_.load(std::memory_order_relaxed);
      ctx.aggregate_ = &state.aggregate;
      ctx.mark_fn_ = [](VertexId) {};
      ctx.update_fn_ = [&](VertexId dst, const U& val) {
        TGPP_CHECK(vr.Contains(dst))
            << "pull_scatter may only update its own source vertex";
        machine->metrics()->updates_generated.Add(1);
        lgb.Accumulate(dst, val, app.vertex_gather);
        claimed[dst - vr.begin] = 1;
      };

      for (int j = 0; j < pq; ++j) {
        for (int sub = 0; sub < pg_->r; ++sub) {
          TGPP_RETURN_IF_ERROR(PullScanChunk(m, app, file,
                                             chunk_at(i, j, sub), vr,
                                             vertex_window, &claimed,
                                             in_frontier, &ctx));
        }
      }

      const uint64_t combined = lgb.present_count();
      if (combined > 0) {
        machine->metrics()->updates_sent.Add(combined);
        // Self-delivery: the gather task routes these into GGB/spill
        // exactly like remote updates, at zero fabric bytes.
        cluster_->fabric()->Send(m, m, Tag(kTagUpdates), lgb.Serialize());
      }
    }
    return Status::OK();
  }

  // Streams one edge chunk for the pull scan, read-ahead overlapped but
  // consumed in page order (pull claims make record order observable, so
  // the scan is always deterministic).
  Status PullScanChunk(int m, KWalkApp<V, U>& app, const PageFile& file,
                       const EdgeChunkInfo& chunk, VertexRange vw_range,
                       const std::vector<V>& vertex_window,
                       std::vector<uint8_t>* claimed,
                       const std::function<bool(VertexId)>& in_frontier,
                       ScatterContext<V, U>* ctx) {
    if (chunk.num_pages == 0 && chunk.delta_pages.empty()) {
      return Status::OK();
    }
    Machine* machine = cluster_->machine(m);

    // Base pages first, then any mutation delta pages (docs/DYNAMIC.md).
    const std::vector<uint64_t> pages = chunk.PageNumbers();
    const uint64_t count = pages.size();
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<uint64_t, PageHandle>> ready;
    std::vector<AsyncIoService::Ticket> tickets;
    tickets.reserve(count);
    auto submit_batch = [&](std::vector<uint64_t> page_nos) {
      tickets.push_back(machine->io()->SubmitReads(
          machine->buffer_pool(), &file, std::move(page_nos),
          [&](uint64_t no, PageHandle handle) {
            std::lock_guard<std::mutex> lock(mu);
            ready.emplace_back(no, std::move(handle));
            cv.notify_all();
          },
          /*prefetch=*/true));
    };
    auto submit = [&](uint64_t page_no) { submit_batch({page_no}); };
    const uint64_t read_ahead =
        static_cast<uint64_t>(std::max(1, options_.read_ahead_pages));
    // One batched submit for the initial window (merge-friendly);
    // refills stay single-page.
    uint64_t submitted = std::min(count, read_ahead);
    if (submitted > 0) {
      std::vector<uint64_t> window(pages.begin(), pages.begin() + submitted);
      submit_batch(std::move(window));
    }
    Status scan_status;
    uint64_t skipped = 0;
    for (uint64_t processed = 0; processed < count; ++processed) {
      std::pair<uint64_t, PageHandle> item;
      {
        std::unique_lock<std::mutex> lock(mu);
        const uint64_t want = pages[processed];
        auto found = ready.end();
        cv.wait(lock, [&] {
          found = std::find_if(ready.begin(), ready.end(), [&](const auto& r) {
            return r.first == want;
          });
          return found != ready.end();
        });
        item = std::move(*found);
        ready.erase(found);
      }
      if (!item.second.valid()) {
        scan_status = Status::IOError("async page read failed");
        break;
      }
      if (submitted < count) {
        submit(pages[submitted]);
        ++submitted;
      }
      SlottedPageReader reader(item.second.data());
      // Bounds-check the slot directory before indexing with it.
      scan_status = reader.Validate();
      if (!scan_status.ok()) break;
      const uint32_t slots = reader.num_slots();
      for (uint32_t s = 0; s < slots; ++s) {
        const VertexId src = reader.SrcAt(s);
        if (src < vw_range.begin || src >= vw_range.end) {
          scan_status = Status::Corruption(
              "record src " + std::to_string(src) + " outside chunk range");
          break;
        }
        const uint64_t idx = src - vw_range.begin;
        if ((*claimed)[idx]) {
          ++skipped;
          continue;
        }
        const V& attr = vertex_window[idx];
        if (app.pull_done && app.pull_done(attr)) {
          ++skipped;
          continue;
        }
        app.pull_scatter(*ctx, src, attr, reader.DstsAt(s), in_frontier);
      }
      if (!scan_status.ok()) break;
    }
    for (auto& ticket : tickets) {
      Status s = ticket.Wait();
      if (!s.ok() && (scan_status.ok() || scan_status.message() ==
                                              "async page read failed")) {
        scan_status = s;
      }
    }
    if (skipped > 0) {
      machine->metrics()->pull_records_skipped.Add(skipped);
    }
    return scan_status;
  }

  // ---- full adjacency list mode scatter (k-walk enumeration) ----

  Status ScatterFull(int m, KWalkApp<V, U>& app,
                     AdjacencyService* adj_service) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    const VertexRange my_range = pg_->MachineRange(m);
    const int q = pg_->q;

    MemoryModelInput mm;
    mm.k = app.k;
    mm.p = pg_->p;
    mm.num_vertices = pg_->num_vertices;
    mm.vertex_attr_bytes = sizeof(V);
    mm.page_size = kPageSize;
    mm.total_budget_bytes = machine->WindowMemoryBytes();
    const WindowSizes sizes = ComputeWindowSizes(mm, q);
    const uint64_t adj_budget = sizes.adj_window_bytes;

    std::vector<V> vertex_window;
    for (int i = 0; i < q; ++i) {
      const VertexRange vr = pg_->VertexChunkRange(m, i);
      if (vr.size() == 0) continue;
      if (state.active.CountSetInRange(vr.begin - my_range.begin,
                                       vr.end - my_range.begin) == 0) {
        continue;
      }
      trace::TraceSpan window_span("scatter.window", "engine");
      window_span.AddArg("window", static_cast<uint64_t>(i));
      TGPP_RETURN_IF_ERROR(ReadAttrRange(m, vr, &vertex_window));

      // Batch active vertices of this window so materialized full lists
      // stay within the adjacency window budget.
      std::vector<VertexId> pending;
      state.active.ForEachSet(
          vr.begin - my_range.begin, vr.end - my_range.begin,
          [&](uint64_t bit) { pending.push_back(my_range.begin + bit); });
      size_t pos = 0;
      while (pos < pending.size()) {
        uint64_t batch_bytes = 0;
        size_t end = pos;
        while (end < pending.size()) {
          const uint64_t bytes =
              (pg_->out_degree[pending[end]] + 2) * sizeof(VertexId);
          if (end > pos && batch_bytes + bytes > adj_budget) break;
          batch_bytes += bytes;
          ++end;
        }
        AdjBatch batch;
        {
          obs::ScopedCpuCounter enum_cpu(
              &machine->metrics()->enumeration_cpu_nanos);
          TGPP_RETURN_IF_ERROR(adj_service->MaterializeLocal(
              std::span<const VertexId>(pending.data() + pos, end - pos),
              &batch));
        }
        std::vector<const AdjBatch*> batch_stack;
        std::vector<const ParentIndex*> index_stack;
        TGPP_RETURN_IF_ERROR(ProcessFullLevel(m, app, adj_service, 1,
                                              batch, &batch_stack,
                                              &index_stack, &vr,
                                              &vertex_window, adj_budget));
        pos = end;
      }
    }
    return Status::OK();
  }

  using ParentIndex = typename ScatterContext<V, U>::ParentIndex;

  // Recursively processes one materialized window at level l, building the
  // voi/parent index for level l+1 from Mark() calls (the
  // mark-and-backward-traversal of paper §2.2). `batch_stack` and
  // `index_stack` hold the still-resident ancestor windows and the parent
  // indexes of the enclosing levels (the appendix A.6 generalization).
  Status ProcessFullLevel(int m, KWalkApp<V, U>& app,
                          AdjacencyService* adj_service, int level,
                          const AdjBatch& batch,
                          std::vector<const AdjBatch*>* batch_stack,
                          std::vector<const ParentIndex*>* index_stack,
                          const VertexRange* vw_range,
                          const std::vector<V>* vertex_window,
                          uint64_t adj_budget) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    batch_stack->push_back(&batch);

    const bool last_level = (level == app.k);
    ParentIndex next_parent_index;
    std::mutex mark_mu;

    // Updates at the last level can target arbitrary vertices; each worker
    // task uses its own fixed-capacity sparse LGB flushed to owners.
    auto flush_sparse = [&](const std::unordered_map<VertexId, U>& map) {
      std::vector<std::vector<uint8_t>> per_owner(pg_->p);
      std::vector<uint64_t> counts(pg_->p, 0);
      for (const auto& [vid, val] : map) {
        const int owner = pg_->OwnerOf(vid);
        if (per_owner[owner].empty()) {
          AppendPod<uint8_t>(&per_owner[owner], 0);
          AppendPod<uint64_t>(&per_owner[owner], 0);  // patched below
        }
        AppendPod<VertexId>(&per_owner[owner], vid);
        AppendPod<U>(&per_owner[owner], val);
        ++counts[owner];
      }
      for (int dst = 0; dst < pg_->p; ++dst) {
        if (per_owner[dst].empty()) continue;
        std::memcpy(per_owner[dst].data() + 1, &counts[dst],
                    sizeof(uint64_t));
        machine->metrics()->updates_sent.Add(counts[dst]);
        cluster_->fabric()->Send(m, dst, Tag(kTagUpdates),
                                 std::move(per_owner[dst]));
      }
    };

    auto process_range = [&](size_t lo, size_t hi) {
      engine_internal::SparseLgb<U> lgb(/*capacity=*/4096, pg_->p);
      ScatterContext<V, U> ctx;
      ctx.level_ = level;
      ctx.superstep_ = current_step_.load(std::memory_order_relaxed);
      ctx.aggregate_ = &state.aggregate;
      ctx.ancestor_batches_ = batch_stack;
      ctx.parent_indexes_ = index_stack;
      ctx.update_fn_ = [&](VertexId dst, const U& val) {
        machine->metrics()->updates_generated.Add(1);
        lgb.Accumulate(dst, val, app.vertex_gather, flush_sparse);
      };
      ctx.mark_fn_ = [&](VertexId v) {
        // Record the walk's ending edge for backward traversal: the
        // current source u becomes a parent of v at the next level.
        // Consecutive duplicates (the same walk prefix marking v through
        // several enumeration paths) are collapsed.
        std::lock_guard<std::mutex> lock(mark_mu);
        std::vector<VertexId>& parents = next_parent_index[v];
        if (parents.empty() || parents.back() != ctx_current_) {
          parents.push_back(ctx_current_);
        }
      };
      for (size_t idx = lo; idx < hi; ++idx) {
        const VertexId vid = batch.vids[idx];
        ctx_current_ = vid;
        // Attributes are available for local vertices inside the current
        // vertex window; remote/other vertices see a default V (the
        // supported apps only read attributes at level 1).
        V attr{};
        if (vertex_window != nullptr && vw_range->Contains(vid)) {
          attr = (*vertex_window)[vid - vw_range->begin];
        }
        app.adj_scatter[level](ctx, vid, attr, batch.Neighbors(idx));
      }
      lgb.FlushAll(flush_sparse);
    };

    if (last_level && level > 1 && batch.size() > 1) {
      // The computation level is the CPU-heavy one (set intersections);
      // split it across the machine's worker threads.
      const size_t n = batch.size();
      const int tasks = std::min<int>(machine->workers()->num_threads(),
                                      static_cast<int>(n));
      // Decrement under done_mu only — see the matching comment in
      // ScatterPartial (stack-scoped cv destruction race otherwise).
      int remaining = tasks;
      std::mutex done_mu;
      std::condition_variable done_cv;
      for (int t = 0; t < tasks; ++t) {
        const size_t lo = n * t / tasks;
        const size_t hi = n * (t + 1) / tasks;
        machine->workers()->Submit([&, lo, hi] {
          obs::ScopedCpuCounter cpu(&machine->metrics()->scatter_cpu_nanos);
          ProcessFullRangeOnWorker(m, app, batch, batch_stack, index_stack,
                                   level, lo, hi, flush_sparse);
          std::lock_guard<std::mutex> lock(done_mu);
          if (--remaining == 0) done_cv.notify_all();
        });
      }
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return remaining == 0; });
    } else {
      process_range(0, batch.size());
    }

    if (last_level || next_parent_index.empty()) {
      batch_stack->pop_back();
      return Status::OK();
    }

    // Construct the level l+1 streams from voi[l+1]: sorted, grouped by
    // owner, fetched in budget-bounded windows (remote owners answer from
    // their disks over the fabric).
    std::vector<VertexId> marked;
    {
      obs::ScopedCpuCounter enum_cpu(
          &machine->metrics()->enumeration_cpu_nanos);
      marked.reserve(next_parent_index.size());
      for (const auto& [vid, parents] : next_parent_index) {
        marked.push_back(vid);
      }
      std::sort(marked.begin(), marked.end());
    }
    index_stack->push_back(&next_parent_index);
    Status recurse_status;
    size_t pos = 0;
    while (pos < marked.size() && recurse_status.ok()) {
      const int owner = pg_->OwnerOf(marked[pos]);
      uint64_t batch_bytes = 0;
      size_t end = pos;
      while (end < marked.size() && pg_->OwnerOf(marked[end]) == owner) {
        const uint64_t bytes =
            (pg_->out_degree[marked[end]] + 2) * sizeof(VertexId);
        if (end > pos && batch_bytes + bytes > adj_budget) break;
        batch_bytes += bytes;
        ++end;
      }
      AdjBatch next_batch;
      recurse_status = adj_service->Fetch(
          owner, std::span<const VertexId>(marked.data() + pos, end - pos),
          &next_batch);
      if (recurse_status.ok()) {
        recurse_status = ProcessFullLevel(
            m, app, adj_service, level + 1, next_batch, batch_stack,
            index_stack, vw_range, vertex_window, adj_budget);
      }
      pos = end;
    }
    index_stack->pop_back();
    batch_stack->pop_back();
    return recurse_status;
  }

  // Worker-side body for the parallel last level (no marking, so no shared
  // state beyond the flush path).
  template <typename Flush>
  void ProcessFullRangeOnWorker(
      int m, KWalkApp<V, U>& app, const AdjBatch& batch,
      const std::vector<const AdjBatch*>* batch_stack,
      const std::vector<const ParentIndex*>* index_stack, int level,
      size_t lo, size_t hi, const Flush& flush_sparse) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    engine_internal::SparseLgb<U> lgb(/*capacity=*/4096, pg_->p);
    ScatterContext<V, U> ctx;
    ctx.level_ = level;
    ctx.superstep_ = current_step_.load(std::memory_order_relaxed);
    ctx.aggregate_ = &state.aggregate;
    ctx.ancestor_batches_ = batch_stack;
    ctx.parent_indexes_ = index_stack;
    ctx.update_fn_ = [&](VertexId dst, const U& val) {
      machine->metrics()->updates_generated.Add(1);
      lgb.Accumulate(dst, val, app.vertex_gather, flush_sparse);
    };
    ctx.mark_fn_ = [](VertexId) {
      TGPP_CHECK(false) << "Mark() is not valid at the last level";
    };
    for (size_t idx = lo; idx < hi; ++idx) {
      V attr{};
      app.adj_scatter[level](ctx, batch.vids[idx], attr,
                             batch.Neighbors(idx));
    }
    lgb.FlushAll(flush_sparse);
  }

  // ---- global gather task (Algorithm 2) ----

  struct GatherRuntime {
    VertexRange chunk0;
    engine_internal::DenseLgb<U> ggb;  // in-memory global gather buffer
    Status status;
    // Buffered spill writers, one per chunk >= 1.
    std::vector<std::vector<uint8_t>> spill_buffers;
  };

  std::string SpillFileName(int c) const {
    return options_.scratch_prefix + "spill_" + std::to_string(c) + ".bin";
  }

  std::string CheckpointFile(const std::string& tag) const {
    return options_.scratch_prefix + "checkpoint_" + tag + ".ckpt";
  }
  static std::string EpochTag(int epoch) {
    return "auto" + std::to_string(epoch);
  }

  Status CheckpointMachine(int m, const std::string& tag, int32_t superstep,
                           uint64_t aggregate) {
    trace::TraceSpan span("checkpoint", "engine");
    obs::SetCurrentJob(options_.job_id);
    Machine* machine = cluster_->machine(m);
    obs::ScopedLatencyTimer ckpt_timer(&machine->metrics()->checkpoint_ns);
    const VertexRange range = pg_->MachineRange(m);
    std::vector<V> attrs;
    TGPP_RETURN_IF_ERROR(ReadAttrRange(m, range, &attrs));
    std::vector<uint8_t> bits((range.size() + 7) / 8, 0);
    states_[m]->active.ForEachSet(
        [&](uint64_t bit) { bits[bit >> 3] |= 1 << (bit & 7); });

    CkptHeader header;
    header.superstep = superstep;
    header.attr_bytes = attrs.size() * sizeof(V);
    header.frontier_bytes = bits.size();
    header.aggregate = aggregate;
    header.body_crc = Crc32(attrs.data(), header.attr_bytes);
    header.body_crc = Crc32(bits.data(), bits.size(), header.body_crc);

    const std::string file = CheckpointFile(tag);
    TGPP_RETURN_IF_ERROR(machine->disk()->Truncate(file, 0));
    TGPP_RETURN_IF_ERROR(
        machine->disk()->Write(file, 0, &header, sizeof(header)));
    if (!attrs.empty()) {
      TGPP_RETURN_IF_ERROR(machine->disk()->Write(
          file, sizeof(header), attrs.data(), header.attr_bytes));
    }
    if (!bits.empty()) {
      TGPP_RETURN_IF_ERROR(machine->disk()->Write(
          file, sizeof(header) + header.attr_bytes, bits.data(),
          bits.size()));
    }
    return machine->disk()->Sync(file);
  }

  Status RestoreMachine(int m, const std::string& tag, CkptHeader* out) {
    trace::TraceSpan span("restore", "engine");
    obs::SetCurrentJob(options_.job_id);
    Machine* machine = cluster_->machine(m);
    const VertexRange range = pg_->MachineRange(m);
    const std::string file = CheckpointFile(tag);
    if (!machine->disk()->Exists(file)) {
      return Status::NotFound("no checkpoint '" + tag + "' on machine " +
                              std::to_string(m));
    }
    CkptHeader header;
    TGPP_RETURN_IF_ERROR(
        machine->disk()->Read(file, 0, &header, sizeof(header)));
    if (header.magic != kCkptMagic || header.version != 1) {
      return Status::Corruption("checkpoint '" + tag + "' on machine " +
                                std::to_string(m) + ": bad magic/version");
    }
    if (header.attr_bytes != range.size() * sizeof(V) ||
        header.frontier_bytes != (range.size() + 7) / 8) {
      return Status::Corruption("checkpoint '" + tag + "' on machine " +
                                std::to_string(m) +
                                ": shape mismatch (different graph or "
                                "attribute schema?)");
    }
    std::vector<V> attrs(range.size());
    if (!attrs.empty()) {
      TGPP_RETURN_IF_ERROR(machine->disk()->Read(
          file, sizeof(header), attrs.data(), header.attr_bytes));
    }
    std::vector<uint8_t> bits(header.frontier_bytes, 0);
    if (!bits.empty()) {
      TGPP_RETURN_IF_ERROR(machine->disk()->Read(
          file, sizeof(header) + header.attr_bytes, bits.data(),
          bits.size()));
    }
    uint32_t crc = Crc32(attrs.data(), header.attr_bytes);
    crc = Crc32(bits.data(), bits.size(), crc);
    if (crc != header.body_crc) {
      return Status::Corruption("checkpoint '" + tag + "' on machine " +
                                std::to_string(m) + ": CRC mismatch");
    }

    TGPP_RETURN_IF_ERROR(WriteAttrRange(m, range, attrs));
    MachineState& state = *states_[m];
    state.active.ClearAll();
    for (uint64_t bit = 0; bit < range.size(); ++bit) {
      if ((bits[bit >> 3] >> (bit & 7)) & 1) state.active.Set(bit);
    }
    // Discard any partial progress of the failed superstep.
    state.next_active.ClearAll();
    state.aggregate.store(0, std::memory_order_relaxed);
    *out = header;
    return Status::OK();
  }

  // Epoch checkpoints: state at the start of superstep `epoch`, written
  // by the Run() loop every options_.checkpoint_every supersteps.
  Status CheckpointEpoch(int epoch) {
    const uint64_t aggregate =
        global_aggregate_.load(std::memory_order_relaxed);
    return cluster_->RunOnAll([&](int m) -> Status {
      return CheckpointMachine(m, EpochTag(epoch), epoch, aggregate);
    });
  }

  Status RestoreEpoch(int epoch) { return Restore(EpochTag(epoch)); }

  // Highest epoch in [0, max_supersteps] with a checkpoint file on
  // machine 0's disk (RemoveEpoch keeps at most the latest two), or -1.
  // A cheap existence scan — Restore still CRC-validates every machine.
  int FindLatestEpoch(int max_supersteps) {
    int found = -1;
    DiskDevice* disk = cluster_->machine(0)->disk();
    for (int e = 0; e <= max_supersteps; ++e) {
      if (disk->Exists(CheckpointFile(EpochTag(e)))) found = e;
    }
    return found;
  }

  void RemoveEpoch(int epoch) {
    if (epoch < 0) return;
    (void)cluster_->RunOnAll([&](int m) -> Status {
      return cluster_->machine(m)->disk()->Remove(
          CheckpointFile(EpochTag(epoch)));
    });
  }

  int ChunkOfLocal(int m, VertexId vid) const {
    const VertexRange range = pg_->MachineRange(m);
    const uint64_t chunk =
        (range.size() + pg_->q - 1) / std::max(1, pg_->q);
    return chunk == 0 ? 0 : static_cast<int>((vid - range.begin) / chunk);
  }

  void GlobalGatherLoop(int m, KWalkApp<V, U>& app, GatherRuntime* grt) {
    Machine* machine = cluster_->machine(m);
    trace::TraceSpan gather_span("gather", "engine");
    obs::ScopedCpuCounter cpu(&machine->metrics()->gather_cpu_nanos);
    grt->spill_buffers.assign(pg_->q, {});
    constexpr size_t kSpillFlushBytes = 64 * 1024;

    auto flush_spill = [&](int c) -> Status {
      auto& buf = grt->spill_buffers[c];
      if (buf.empty()) return Status::OK();
      uint64_t offset;
      TGPP_RETURN_IF_ERROR(machine->disk()->Append(
          SpillFileName(c), buf.data(), buf.size(), &offset));
      buf.clear();
      return Status::OK();
    };

    // Accumulates one data message into GGB / spill buffers. Returns the
    // first spill-flush error.
    auto consume = [&](const Message& msg) -> Status {
      PodReader reader(msg.payload);
      reader.Read<uint8_t>();  // kind: data (checked by the caller)
      const uint64_t count = reader.Read<uint64_t>();
      for (uint64_t i = 0; i < count; ++i) {
        const VertexId vid = reader.Read<VertexId>();
        const U val = reader.Read<U>();
        const int c = ChunkOfLocal(m, vid);
        if (c == 0) {
          grt->ggb.Accumulate(vid, val, app.vertex_gather);
          machine->metrics()->updates_local_gathered.Add(1);
        } else {
          AppendPod<VertexId>(&grt->spill_buffers[c], vid);
          AppendPod<U>(&grt->spill_buffers[c], val);
          machine->metrics()->updates_spilled.Add(1);
          if (grt->spill_buffers[c].size() >= kSpillFlushBytes) {
            TGPP_RETURN_IF_ERROR(flush_spill(c));
          }
        }
      }
      return Status::OK();
    };

    // In deterministic mode incoming messages are buffered per sender and
    // consumed in ascending sender order after all machines are done:
    // update accumulation order (and thus floating-point results) no
    // longer depends on arrival order. Default mode accumulates eagerly
    // for maximum overlap.
    std::vector<std::vector<Message>> by_src;
    if (options_.deterministic) by_src.resize(pg_->p);

    int done_markers = 0;
    Message msg;
    while (done_markers < pg_->p) {
      // The deadline keeps a lost done marker or update from hanging the
      // engine: the gather fails with kTimeout and recovery takes over.
      Status s = cluster_->fabric()->RecvFor(m, Tag(kTagUpdates), &msg,
                                             options_.recv_timeout_ms);
      if (!s.ok()) {
        grt->status = s;
        return;
      }
      const uint8_t kind = msg.payload.empty() ? 0 : msg.payload[0];
      if (kind == 1) {
        ++done_markers;
        continue;
      }
      if (options_.deterministic) {
        by_src[msg.src].push_back(std::move(msg));
        continue;
      }
      Status consumed = consume(msg);
      if (!consumed.ok()) {
        grt->status = consumed;
        return;
      }
    }
    for (auto& src_msgs : by_src) {
      for (const Message& buffered : src_msgs) {
        Status consumed = consume(buffered);
        if (!consumed.ok()) {
          grt->status = consumed;
          return;
        }
      }
    }
    for (int c = 1; c < pg_->q; ++c) {
      Status s = flush_spill(c);
      if (!s.ok()) {
        grt->status = s;
        return;
      }
    }
  }

  // ---- gather-spilled + apply, overlapped (Algorithms 3-4) ----

  Status ApplyPhase(int m, KWalkApp<V, U>& app, GatherRuntime* grt) {
    Machine* machine = cluster_->machine(m);
    MachineState& state = *states_[m];
    const int q = pg_->q;
    const VertexId local_base = pg_->MachineRange(m).begin;

    // Producer: gathers spilled partitions into dense per-chunk GGBs while
    // the consumer applies earlier chunks (double buffering via a slot
    // queue of depth 2).
    struct Slot {
      int chunk;
      engine_internal::DenseLgb<U> ggb;
    };
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Slot> slots;
    Status producer_status;
    bool producer_done = (q <= 1);

    std::thread producer;
    if (q > 1) {
      producer = std::thread([&] {
        if (trace::Enabled()) {
          trace::SetCurrentMachine(m);
          trace::SetCurrentThreadName("m" + std::to_string(m) +
                                      ".spill_gather");
        }
        obs::SetCurrentJob(options_.job_id);
        trace::TraceSpan spill_span("gather.spilled", "engine");
        obs::ScopedCpuCounter cpu(&machine->metrics()->gather_cpu_nanos);
        for (int c = 1; c < q; ++c) {
          Slot slot;
          slot.chunk = c;
          slot.ggb.Reset(pg_->VertexChunkRange(m, c));
          // A chunk that never spilled has no file at all (the device
          // does not materialize files on read paths).
          Result<uint64_t> size =
              machine->disk()->Exists(SpillFileName(c))
                  ? machine->disk()->FileSize(SpillFileName(c))
                  : Result<uint64_t>(uint64_t{0});
          if (!size.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            producer_status = size.status();
            producer_done = true;
            cv.notify_all();
            return;
          }
          std::vector<uint8_t> data(*size);
          if (*size > 0) {
            Status s = machine->disk()->Read(SpillFileName(c), 0,
                                             data.data(), data.size());
            if (!s.ok()) {
              std::lock_guard<std::mutex> lock(mu);
              producer_status = s;
              producer_done = true;
              cv.notify_all();
              return;
            }
          }
          PodReader reader(data);
          while (!reader.AtEnd()) {
            const VertexId vid = reader.Read<VertexId>();
            const U val = reader.Read<U>();
            slot.ggb.Accumulate(vid, val, app.vertex_gather);
          }
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return slots.size() < 2; });
          slots.push_back(std::move(slot));
          cv.notify_all();
        }
        std::lock_guard<std::mutex> lock(mu);
        producer_done = true;
        cv.notify_all();
      });
    }

    // Consumer: Apply (Algorithm 4).
    Status apply_status;
    {
      trace::TraceSpan apply_span("apply", "engine");
      obs::ScopedCpuCounter cpu(&machine->metrics()->apply_cpu_nanos);
      std::vector<V> attrs;
      for (int c = 0; c < q && apply_status.ok(); ++c) {
        engine_internal::DenseLgb<U>* ggb = nullptr;
        Slot slot;
        if (c == 0) {
          ggb = &grt->ggb;
        } else {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] {
            return !slots.empty() || (producer_done && !producer_status.ok());
          });
          if (!producer_status.ok()) break;
          slot = std::move(slots.front());
          slots.pop_front();
          cv.notify_all();
          TGPP_CHECK(slot.chunk == c);
          ggb = &slot.ggb;
        }
        const VertexRange chunk = pg_->VertexChunkRange(m, c);
        if (chunk.size() == 0) continue;
        apply_status = ReadAttrRange(m, chunk, &attrs);
        if (!apply_status.ok()) break;
        ApplyChunk(app, chunk, ggb, local_base, &state, &attrs);
        apply_status = WriteAttrRange(m, chunk, attrs);
      }
    }
    if (producer.joinable()) producer.join();
    TGPP_RETURN_IF_ERROR(producer_status);
    return apply_status;
  }

  void ApplyChunk(KWalkApp<V, U>& app, VertexRange chunk,
                  engine_internal::DenseLgb<U>* ggb, VertexId local_base,
                  MachineState* state, std::vector<V>* attrs) {
    // DenseLgb internals are reused as the GGB: values + present flags.
    const std::vector<uint8_t>* present = nullptr;
    const std::vector<U>* values = nullptr;
    ggb->ExposeForApply(&values, &present);
    for (uint64_t i = 0; i < chunk.size(); ++i) {
      const bool has_update = (*present)[i] != 0;
      if (app.apply_mode == ApplyMode::kUpdatedOnly && !has_update) {
        continue;
      }
      const VertexId vid = chunk.begin + i;
      const U* update = has_update ? &(*values)[i] : nullptr;
      const bool active_next = app.vertex_apply(vid, (*attrs)[i], update);
      if (active_next) state->next_active.Set(vid - local_base);
    }
  }

  // ---- allreduce over the fabric (control plane) ----

  // Reduces (active count, aggregate, failed flag) at machine 0 and
  // broadcasts the OR of the failure flags back in the acks. Machine 0
  // applies a receive deadline so a lost contribution surfaces as
  // kTimeout; it then still sends (failed) acks so peers are never
  // stranded, and everyone reaches the closing barrier.
  Status Allreduce(int m, uint64_t local_active, uint64_t local_aggregate,
                   bool local_failed) {
    trace::TraceSpan span("allreduce", "net");
    Fabric* fabric = cluster_->fabric();
    std::vector<uint8_t> payload;
    AppendPod<uint64_t>(&payload, local_active);
    AppendPod<uint64_t>(&payload, local_aggregate);
    AppendPod<uint8_t>(&payload, local_failed ? 1 : 0);
    fabric->Send(m, 0, Tag(kTagControl), std::move(payload));
    Status result;
    if (m == 0) {
      uint64_t total_active = 0;
      uint64_t total_aggregate = 0;
      bool any_failed = false;
      for (int i = 0; i < pg_->p; ++i) {
        Message msg;
        Status s =
            fabric->RecvFor(0, Tag(kTagControl), &msg, options_.recv_timeout_ms);
        if (!s.ok()) {
          result = s;
          any_failed = true;
          break;
        }
        PodReader reader(msg.payload);
        total_active += reader.Read<uint64_t>();
        total_aggregate += reader.Read<uint64_t>();
        any_failed = any_failed || reader.Read<uint8_t>() != 0;
      }
      if (result.ok()) {
        global_active_.store(total_active, std::memory_order_relaxed);
        global_aggregate_.fetch_add(total_aggregate,
                                    std::memory_order_relaxed);
      }
      if (any_failed) {
        trace::Instant("superstep.failed", "engine", "step",
                       current_step_.load(std::memory_order_relaxed));
      }
      for (int i = 1; i < pg_->p; ++i) {
        std::vector<uint8_t> ack;
        AppendPod<uint8_t>(&ack, any_failed ? 1 : 0);
        fabric->Send(0, i, Tag(kTagControl), std::move(ack));
      }
    } else {
      Message ack;
      Status s =
          fabric->RecvFor(m, Tag(kTagControl), &ack, options_.recv_timeout_ms);
      if (!s.ok()) result = s;
      // A failed ack means some machine lost this superstep; that
      // machine's own status drives recovery, so peers just proceed to
      // the barrier.
    }
    Status barrier_status = FailableBarrier(m);
    if (result.ok()) result = barrier_status;
    return result;
  }

  Cluster* cluster_;
  const PartitionedGraph* pg_;
  EngineOptions options_;
  std::vector<std::unique_ptr<MachineState>> states_;
  std::atomic<uint64_t> global_active_{0};
  std::atomic<uint64_t> global_aggregate_{0};
  std::atomic<int> current_step_{0};  // superstep number, for trace args
  std::atomic<int> current_direction_{0};  // 0 = push, 1 = pull
  // Set by Run() before the superstep loop starts (machine threads only
  // read it): routes JobBarrier through the failable fabric barrier.
  bool detection_enabled_ = false;

  // Scratch for the serial full-mode context (one orchestrator per
  // machine; see process_range).
  thread_local static VertexId ctx_current_;
};

template <typename V, typename U>
thread_local VertexId NwsmEngine<V, U>::ctx_current_ = kInvalidVertex;

}  // namespace tgpp

#endif  // TGPP_CORE_ENGINE_H_
