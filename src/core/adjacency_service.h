// AdjacencyService: full adjacency-list materialization (paper A.3,
// "Adjacency List Materialization") and the remote-read path of NWSM
// (paper §4.1: for levels l > 1, reads "can involve network I/Os as well
// as remote disk I/Os").
//
// Local materialization identifies the edge pages containing records of
// the requested (sorted) vertices via the two-level chunk/page index,
// issues page reads in ascending page order (sequential I/O), and merges
// per-source partial records — which arrive in ascending destination order
// by construction of the chunk grid, so each merged list is sorted and
// intersection-ready without an extra sort.
//
// Remote fetches go through the fabric: each machine runs a serving loop
// that answers kTagAdjRequest messages from its own disk (counted as that
// machine's disk I/O plus network bytes both ways).

#ifndef TGPP_CORE_ADJACENCY_SERVICE_H_
#define TGPP_CORE_ADJACENCY_SERVICE_H_

#include <span>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/codec.h"
#include "partition/partitioner.h"

namespace tgpp {

// A materialized batch of full adjacency lists.
struct AdjBatch {
  std::vector<VertexId> vids;      // ascending
  std::vector<uint64_t> offsets;   // vids.size() + 1 entries into dsts
  std::vector<VertexId> dsts;

  size_t size() const { return vids.size(); }
  std::span<const VertexId> Neighbors(size_t index) const {
    return {dsts.data() + offsets[index],
            static_cast<size_t>(offsets[index + 1] - offsets[index])};
  }
  // Neighbors of `vid`, or empty if vid not in the batch.
  std::span<const VertexId> NeighborsOf(VertexId vid) const;
  uint64_t size_bytes() const {
    return vids.size() * sizeof(VertexId) +
           offsets.size() * sizeof(uint64_t) +
           dsts.size() * sizeof(VertexId);
  }
};

class AdjacencyService {
 public:
  AdjacencyService(Cluster* cluster, const PartitionedGraph* pg,
                   int machine_id);
  ~AdjacencyService();

  // Materializes full lists for `vids` (ascending, owned by this machine)
  // from the local disk through the buffer pool.
  Status MaterializeLocal(std::span<const VertexId> vids, AdjBatch* out);

  // Fetches full lists for `vids` (ascending, all owned by `owner`).
  // Local owner short-circuits to MaterializeLocal; remote owners are
  // asked over the fabric.
  Status Fetch(int owner, std::span<const VertexId> vids, AdjBatch* out);

  // Starts/stops the serving thread that answers remote requests. Stop()
  // must only be called when no machine will issue further requests (the
  // engine stops services after a global barrier).
  void Start();
  void Stop();

  // Deadline for awaiting a remote reply; a lost request or response then
  // surfaces as Status::Timeout instead of hanging the scatter. <= 0
  // waits forever (the default).
  void set_recv_timeout_ms(int64_t ms) { recv_timeout_ms_ = ms; }

  // Offset added to kTagAdjRequest/kTagAdjResponse, mirroring
  // EngineOptions::fabric_tag_base: concurrent engines get disjoint
  // request/response channels. Must be set before Start().
  void set_tag_base(uint32_t base) { tag_base_ = base; }

 private:
  void ServeLoop();

  uint32_t RequestTag() const { return tag_base_ + kTagAdjRequest; }
  uint32_t ResponseTag() const { return tag_base_ + kTagAdjResponse; }

  Cluster* cluster_;
  const PartitionedGraph* pg_;
  int machine_id_;
  std::thread server_;
  uint64_t next_request_id_ = 1;
  int64_t recv_timeout_ms_ = 0;
  uint32_t tag_base_ = 0;
};

}  // namespace tgpp

#endif  // TGPP_CORE_ADJACENCY_SERVICE_H_
