#include "core/memory_model.h"

#include <algorithm>

namespace tgpp {

uint64_t TotalVertexAttrBytes(const MemoryModelInput& in) {
  return in.num_vertices * in.vertex_attr_bytes;
}

uint64_t FixedLevelBytes(const MemoryModelInput& in) {
  // alpha * |VA| = |V| / 8 (one bitmap over all vertices).
  const uint64_t voi_bytes = (in.num_vertices + 7) / 8;
  return static_cast<uint64_t>(in.k) * (2 * in.page_size + voi_bytes);
}

Result<int> ComputeQMin(const MemoryModelInput& in) {
  const uint64_t fixed = FixedLevelBytes(in);
  if (in.total_budget_bytes <= fixed) {
    return Status::OutOfMemory(
        "memory budget " + std::to_string(in.total_budget_bytes) +
        " cannot cover fixed window costs " + std::to_string(fixed) +
        " for k=" + std::to_string(in.k));
  }
  const uint64_t va = TotalVertexAttrBytes(in);
  const uint64_t numer = (4ull * in.k + 1) * va;
  const uint64_t denom = (in.total_budget_bytes - fixed) *
                         static_cast<uint64_t>(in.p);
  // ceil(numer / denom), at least 1.
  const uint64_t q = std::max<uint64_t>(1, (numer + denom - 1) / denom);
  if (q > in.num_vertices) {
    return Status::OutOfMemory(
        "required q=" + std::to_string(q) +
        " exceeds vertices per machine; budget too small");
  }
  return static_cast<int>(q);
}

WindowSizes ComputeWindowSizes(const MemoryModelInput& in, int q) {
  const uint64_t va = TotalVertexAttrBytes(in);
  const uint64_t pq = static_cast<uint64_t>(in.p) * q;
  WindowSizes sizes;
  sizes.vertex_window_bytes = 2 * va / pq;
  sizes.lgb_bytes = 2 * va / pq;
  sizes.ggb_bytes = va / pq;
  sizes.voi_bytes = (in.num_vertices + 7) / 8;
  const uint64_t used =
      static_cast<uint64_t>(in.k) *
          (sizes.vertex_window_bytes + sizes.lgb_bytes + sizes.voi_bytes) +
      sizes.ggb_bytes;
  // Remaining budget goes to adjacency windows; the last level needs only a
  // small share (paper §4.2), so we split the remainder across k levels but
  // never below two pages per level.
  const uint64_t remaining =
      in.total_budget_bytes > used ? in.total_budget_bytes - used : 0;
  sizes.adj_window_bytes =
      std::max<uint64_t>(2 * in.page_size, remaining / std::max(1, in.k));
  return sizes;
}

uint64_t MinimumRequiredBytes(const MemoryModelInput& in, int q) {
  const uint64_t va = TotalVertexAttrBytes(in);
  const uint64_t pq = static_cast<uint64_t>(in.p) * q;
  const uint64_t voi_bytes = (in.num_vertices + 7) / 8;
  return static_cast<uint64_t>(in.k) *
             (4 * va / pq + 2 * in.page_size + voi_bytes) +
         va / pq;
}

Status ReservationLedger::Reserve(uint64_t bytes, const std::string& who) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > capacity_ - reserved_) {
    return Status::OutOfMemory(
        who + ": reservation of " + std::to_string(bytes) +
        " bytes exceeds available " + std::to_string(capacity_ - reserved_) +
        " of " + std::to_string(capacity_));
  }
  reserved_ += bytes;
  return Status::OK();
}

void ReservationLedger::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ = bytes > reserved_ ? 0 : reserved_ - bytes;
}

uint64_t ReservationLedger::reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

uint64_t ReservationLedger::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - reserved_;
}

}  // namespace tgpp
