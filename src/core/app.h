// The k-walk neighborhood programming API (paper §2.3, Figure 6).
//
// A query is described by a KWalkApp<V, U>:
//   V — the per-vertex attribute schema (a trivially copyable struct),
//   U — the update value schema (trivially copyable).
//
// Users provide:
//   init           — ProcessVertices: initialize a vertex; return whether it
//                    starts active (voi[1]).
//   adj_scatter[l] — scatter function for level l (1-based). For l < k it
//                    marks vertices of interest for level l+1 via
//                    ScatterContext::Mark; for l == k it performs the
//                    computation, emitting updates and/or aggregating.
//   vertex_gather  — the update combiner (associative, commutative).
//   vertex_apply   — recomputes the attribute from the gathered update;
//                    returns whether the vertex is active next superstep.
//
// The ScatterContext exposes the system primitives of Figure 6:
// GetParentList, GetAdjList (of a parent), common-neighbor iteration, the
// degree-order partial-order check, update emission and marking.

#ifndef TGPP_CORE_APP_H_
#define TGPP_CORE_APP_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/adjacency_service.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace tgpp {

inline constexpr int kMaxWalkLength = 4;

// Paper §2.2: partial adjacency lists suffice when the computation unit is
// an edge (PR, SSSP); full lists are required for intersection-based
// subgraph queries (TC, LCC).
enum class AdjMode {
  kPartial,
  kFull,
};

enum class ApplyMode {
  kAllVertices,   // apply runs on every local vertex (e.g. PageRank)
  kUpdatedOnly,   // apply runs only on vertices that received updates
};

template <typename V, typename U>
class NwsmEngine;

// The per-walk computation interface handed to adj_scatter (paper Fig 6).
template <typename V, typename U>
class ScatterContext {
 public:
  int level() const { return level_; }

  // The current superstep (0-based). Staged kernels (delta-stepping
  // buckets, label-propagation rounds, MIS round parity) key their
  // per-round randomness and sampling decisions off this.
  int superstep() const { return superstep_; }

  // Emits an update to `dst` (combined en route by LGB/GGB).
  void Update(VertexId dst, const U& value) { update_fn_(dst, value); }

  // Marks `v` into voi[level+1] (only meaningful when level < k).
  void Mark(VertexId v) { mark_fn_(v); }

  // Adds to the query-global sum aggregator (e.g. the triangle count).
  void AggregateAdd(uint64_t delta) {
    aggregate_->fetch_add(delta, std::memory_order_relaxed);
  }

  // Degree-order partial-order constraint (paper §3): new vertex IDs are
  // assigned in descending degree order, so ID comparison is the
  // constraint used to enumerate each subgraph instance once.
  static bool CheckPartialOrder(VertexId u, VertexId v) { return u < v; }

  using ParentIndex = std::unordered_map<VertexId, std::vector<VertexId>>;

  // GetParentList(l, v) (paper Fig 6): the level-l source vertices u of
  // ending edges (u, v) of walks that marked v at level l+1. Valid for
  // l in [1, level-1].
  std::span<const VertexId> GetParentList(int l, VertexId v) const {
    if (parent_indexes_ == nullptr || l < 1 ||
        l > static_cast<int>(parent_indexes_->size())) {
      return {};
    }
    const ParentIndex* index = (*parent_indexes_)[l - 1];
    auto it = index->find(v);
    if (it == index->end()) return {};
    return it->second;
  }

  // Convenience: parents at the immediately preceding level.
  std::span<const VertexId> GetParentList(VertexId v) const {
    return GetParentList(level_ - 1, v);
  }

  // Full adjacency list of an ancestor vertex: searched through the still
  // resident windows of levels level-1 down to 1 (the appendix A.6
  // relaxation — streams at level l+1 may reference any level l' <= l).
  std::span<const VertexId> GetAdjList(VertexId u) const {
    if (ancestor_batches_ == nullptr) return {};
    for (auto it = ancestor_batches_->rbegin();
         it != ancestor_batches_->rend(); ++it) {
      const AdjBatch& batch = **it;
      auto found = std::lower_bound(batch.vids.begin(), batch.vids.end(),
                                    u);
      if (found != batch.vids.end() && *found == u) {
        return batch.Neighbors(
            static_cast<size_t>(found - batch.vids.begin()));
      }
    }
    return {};
  }

 private:
  friend class NwsmEngine<V, U>;

  int level_ = 1;
  int superstep_ = 0;
  std::function<void(VertexId, const U&)> update_fn_;
  std::function<void(VertexId)> mark_fn_;
  std::atomic<uint64_t>* aggregate_ = nullptr;
  // Stack of ancestor windows: element i is the level-(i+1) AdjBatch.
  const std::vector<const AdjBatch*>* ancestor_batches_ = nullptr;
  // Stack of parent indexes: element i maps level-(i+2) vertices to
  // their level-(i+1) parents.
  const std::vector<const ParentIndex*>* parent_indexes_ = nullptr;
};

// GetCommonNbrList (paper Fig 6): common neighbors of two full lists.
// Lists produced by the engine are ascending, so this is a sorted
// intersection (galloping for skewed pairs; see graph/csr.h).
inline void GetCommonNbrList(std::span<const VertexId> a,
                             std::span<const VertexId> b,
                             std::vector<VertexId>* out) {
  out->clear();
  SortedIntersection(a, b, out);
}

template <typename V, typename U>
struct KWalkApp {
  using ScatterFn = std::function<void(ScatterContext<V, U>&, VertexId,
                                       const V&, std::span<const VertexId>)>;

  int k = 1;
  AdjMode mode = AdjMode::kPartial;
  ApplyMode apply_mode = ApplyMode::kAllVertices;
  int max_supersteps = 1;

  // Returns true if the vertex starts in voi[1] of superstep 1.
  std::function<bool(VertexId, V&)> init;

  ScatterFn adj_scatter[kMaxWalkLength + 1];  // index by level, 1-based

  // Combiner: fold `incoming` into `accumulated`.
  std::function<void(U&, const U&)> vertex_gather;

  // `update` is null when the vertex received no updates this superstep.
  // Returns true if the vertex is active in the next superstep.
  std::function<bool(VertexId, V&, const U*)> vertex_apply;

  // --- Direction-optimizing extensions (algos/frontier.h,
  // docs/ALGORITHMS.md). All optional; a kernel that sets none of these
  // runs exactly as before.

  // Pull-direction scatter, run instead of adj_scatter[1] on pull
  // supersteps (k == 1, partial mode only). `u` is the record's source
  // vertex playing the *pulling* role: on a symmetric (undirected)
  // graph its out-list equals its in-list, so the kernel scans `adj`
  // for frontier members (`in_frontier(v)`) and typically early-exits
  // after the first hit. Contract: may only Update() `u` itself — the
  // engine claims `u` after its first update and skips its remaining
  // records this superstep.
  std::function<void(ScatterContext<V, U>&, VertexId, const V&,
                     std::span<const VertexId>,
                     const std::function<bool(VertexId)>&)>
      pull_scatter;

  // Pull-superstep record skip: return true when the vertex's value can
  // no longer change (e.g. BFS distance already settled); its records
  // are then skipped without scanning edges.
  std::function<bool(const V&)> pull_done;

  // Called on the driver thread when a superstep ends with an empty
  // global frontier. Return true to continue running (staged kernels
  // advance their bucket/round in shared state and reactivate vertices
  // in the next kAllVertices apply pass); false ends the run. Kernels
  // using this hold scheduling state outside the checkpointed vertex
  // attributes, so they must not be combined with
  // EngineOptions::checkpoint_every (docs/ALGORITHMS.md).
  std::function<bool(int superstep)> on_quiescent;
};

// Statistics returned by a query run.
struct QueryStats {
  int supersteps = 0;  // logical supersteps in the result (replays excluded)
  double wall_seconds = 0;
  uint64_t aggregate_sum = 0;  // sum of ScatterContext::AggregateAdd calls
  int q_used = 1;              // vertex chunks per machine actually used
  int checkpoints = 0;         // superstep-boundary checkpoints written
  int recoveries = 0;          // rollbacks to a checkpoint (docs/FAULTS.md)
  int push_supersteps = 0;     // supersteps scattered in push direction
  int pull_supersteps = 0;     // supersteps scattered in pull direction

  // Recovery decomposition (Ammar/Özsu-style detect / restore /
  // re-execute, docs/FAULTS.md): wall time of failed supersteps (failure
  // onset to detection), of checkpoint restores, and of re-executed
  // supersteps; plus the total superstep distance rolled back. All zero
  // on a fault-free run.
  double recovery_detect_seconds = 0;
  double recovery_restore_seconds = 0;
  double recovery_replay_seconds = 0;
  int recovered_superstep_distance = 0;
  // True when this run resumed from an existing checkpoint instead of
  // superstep 0 (EngineOptions::resume_from_checkpoint).
  bool resumed = false;
};

}  // namespace tgpp

#endif  // TGPP_CORE_APP_H_
