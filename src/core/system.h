// TurboGraphSystem: the user-facing entry point.
//
// Owns the simulated cluster and the partitioned graph, and implements the
// adaptive step of Algorithm 1 (lines 1-4): before a query runs, q_new is
// computed from the memory model; if the current partitioning is too
// coarse (q_new > q), BBP is re-executed with the finer q. This is what
// lets TurboGraph++ run any supported query under a fixed memory budget
// instead of crashing.

#ifndef TGPP_CORE_SYSTEM_H_
#define TGPP_CORE_SYSTEM_H_

#include <memory>
#include <utility>

#include "core/engine.h"
#include "util/timer.h"

namespace tgpp {

class TurboGraphSystem {
 public:
  explicit TurboGraphSystem(const ClusterConfig& config)
      : cluster_(std::make_unique<Cluster>(config)) {}

  Cluster* cluster() { return cluster_.get(); }
  const PartitionedGraph* partition() const { return &pg_; }
  // Non-const access for the dynamic-graph subsystem (dyn::DynamicGraph
  // edits chunk metadata in place). Callers taking this must pin q high
  // enough up front: once the graph is mutated, RunQuery refuses to
  // repartition (Repartition rebuilds pages from the original edge list,
  // which would silently drop every applied batch).
  PartitionedGraph* mutable_partition() { return &pg_; }
  const EdgeList& graph() const { return graph_; }

  // Partitions `graph` onto the cluster (BBP by default). `q` below 1
  // means "start at q=1 and let queries repartition on demand".
  Status LoadGraph(EdgeList graph,
                   PartitionScheme scheme = PartitionScheme::kBbp,
                   int q = 1) {
    graph_ = std::move(graph);
    scheme_ = scheme;
    return Repartition(q < 1 ? 1 : q);
  }

  // Wall-clock cost of the most recent (re)partitioning — the Fig 8(a)
  // preprocessing measurement.
  double last_partition_seconds() const { return last_partition_seconds_; }

  // Runs the query end to end: memory check (+ repartition if needed),
  // ProcessVertices, supersteps. On success optionally returns the final
  // attributes indexed by OLD vertex id.
  template <typename V, typename U>
  Result<QueryStats> RunQuery(KWalkApp<V, U>& app,
                              std::vector<V>* attrs_by_old_id = nullptr,
                              EngineOptions options = {}) {
    NwsmEngine<V, U> probe(cluster_.get(), &pg_);
    TGPP_ASSIGN_OR_RETURN(const int q_needed, probe.ComputeRequiredQ(app));
    if (q_needed > pg_.q) {
      if (pg_.mutated()) {
        return Status::NotSupported(
            "query needs q=" + std::to_string(q_needed) +
            " but the graph has applied mutations (epoch " +
            std::to_string(pg_.mutation_epoch) +
            "); repartitioning would drop them — load with a larger q "
            "before mutating");
      }
      TGPP_LOG(Info) << "query needs q=" << q_needed << " > current q="
                     << pg_.q << "; re-executing BBP";
      TGPP_RETURN_IF_ERROR(Repartition(q_needed));
    }
    NwsmEngine<V, U> engine(cluster_.get(), &pg_, options);
    TGPP_RETURN_IF_ERROR(engine.Initialize(app));
    TGPP_ASSIGN_OR_RETURN(QueryStats stats, engine.Run(app));
    if (attrs_by_old_id != nullptr) {
      std::vector<V> by_new_id;
      TGPP_RETURN_IF_ERROR(engine.ReadAttributes(&by_new_id));
      attrs_by_old_id->resize(by_new_id.size());
      for (VertexId new_id = 0; new_id < by_new_id.size(); ++new_id) {
        (*attrs_by_old_id)[pg_.new_to_old[new_id]] = by_new_id[new_id];
      }
    }
    return stats;
  }

  // Convenience overload: run with engine options, discarding attributes.
  template <typename V, typename U>
  Result<QueryStats> RunQuery(KWalkApp<V, U>& app, EngineOptions options) {
    return RunQuery<V, U>(app, nullptr, options);
  }

  Status Repartition(int q) {
    WallTimer timer;
    PartitionOptions options;
    options.scheme = scheme_;
    options.q = q;
    TGPP_ASSIGN_OR_RETURN(pg_, PartitionGraph(cluster_.get(), graph_,
                                              options));
    // The edge files were rewritten; any cached pages are stale.
    for (int m = 0; m < cluster_->num_machines(); ++m) {
      cluster_->machine(m)->buffer_pool()->DropAll();
    }
    last_partition_seconds_ = timer.Seconds();
    return Status::OK();
  }

 private:
  std::unique_ptr<Cluster> cluster_;
  EdgeList graph_;
  PartitionScheme scheme_ = PartitionScheme::kBbp;
  PartitionedGraph pg_;
  double last_partition_seconds_ = 0;
};

}  // namespace tgpp

#endif  // TGPP_CORE_SYSTEM_H_
