// Memory model for the NWSM engine (paper §4.2 and Theorem 4.1).
//
// Given a k-walk query and a memory budget, computes the minimum number of
// vertex chunks per machine q_min such that all windows fit:
//
//   q_min = ceil[ (1/p) * (4k+1)|VA| / (|M|_total - k(2*PS + alpha*|VA|)) ]
//
// with |VA| the total vertex-attribute bytes, PS the page size, and
// alpha*|VA| = |V|/8 the bitmap bytes of one voi set. From q the per-window
// byte sizes of Equation 3 follow.

#ifndef TGPP_CORE_MEMORY_MODEL_H_
#define TGPP_CORE_MEMORY_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace tgpp {

struct MemoryModelInput {
  int k = 1;                      // walk length
  int p = 1;                      // number of machines
  uint64_t num_vertices = 0;      // |V|
  uint64_t vertex_attr_bytes = 0; // per-vertex attribute size
  uint64_t page_size = 64 * 1024; // PS
  uint64_t total_budget_bytes = 0;// |M|_total per machine (after the fixed
                                  // edge-page buffer is subtracted)
};

// Total vertex-attribute bytes |VA|.
uint64_t TotalVertexAttrBytes(const MemoryModelInput& in);

// The per-level fixed costs k*(2*PS + alpha*|VA|).
uint64_t FixedLevelBytes(const MemoryModelInput& in);

// q_min per Theorem 4.1. Fails with kOutOfMemory when even q -> infinity
// cannot satisfy the budget (fixed costs alone exceed it).
Result<int> ComputeQMin(const MemoryModelInput& in);

// Equation 3 window sizes for a given q.
struct WindowSizes {
  uint64_t vertex_window_bytes;   // |vw^l|  = 2|VA|/(p q)
  uint64_t lgb_bytes;             // |LGB^l| = 2|VA|/(p q)
  uint64_t ggb_bytes;             // |GGB|   =  |VA|/(p q)
  uint64_t voi_bytes;             // |voi^l| = |V|/8
  uint64_t adj_window_bytes;      // remaining budget split across levels
};

WindowSizes ComputeWindowSizes(const MemoryModelInput& in, int q);

// Total minimum requirement |M|_min of Equation 4 for a given q.
uint64_t MinimumRequiredBytes(const MemoryModelInput& in, int q);

// ReservationLedger: admission-control accounting over the per-machine
// window budget. The job service reserves a job's |M|_min (Equation 4)
// out of the ledger before the job may start and releases it when the
// job reaches a terminal state; Reserve fails with kOutOfMemory when the
// remaining capacity cannot cover the request, which is the service's
// backpressure signal. This is bookkeeping, not enforcement — engines
// still allocate from the real heap — mirroring how the paper's §4.2
// model *plans* memory rather than metering it.
class ReservationLedger {
 public:
  explicit ReservationLedger(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  Status Reserve(uint64_t bytes, const std::string& who);
  void Release(uint64_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t reserved() const;
  uint64_t available() const;

 private:
  const uint64_t capacity_;
  mutable std::mutex mu_;
  uint64_t reserved_ = 0;
};

}  // namespace tgpp

#endif  // TGPP_CORE_MEMORY_MODEL_H_
