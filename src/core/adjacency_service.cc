#include "core/adjacency_service.h"

#include <algorithm>

#include "common/logging.h"
#include "core/codec.h"
#include "storage/page_file.h"
#include "storage/slotted_page.h"

namespace tgpp {

std::span<const VertexId> AdjBatch::NeighborsOf(VertexId vid) const {
  auto it = std::lower_bound(vids.begin(), vids.end(), vid);
  if (it == vids.end() || *it != vid) return {};
  return Neighbors(static_cast<size_t>(it - vids.begin()));
}

AdjacencyService::AdjacencyService(Cluster* cluster,
                                   const PartitionedGraph* pg,
                                   int machine_id)
    : cluster_(cluster), pg_(pg), machine_id_(machine_id) {}

AdjacencyService::~AdjacencyService() {
  TGPP_CHECK(!server_.joinable())
      << "AdjacencyService destroyed while serving; call Stop()";
}

Status AdjacencyService::MaterializeLocal(std::span<const VertexId> vids,
                                          AdjBatch* out) {
  out->vids.assign(vids.begin(), vids.end());
  out->offsets.assign(vids.size() + 1, 0);
  out->dsts.clear();
  if (vids.empty()) return Status::OK();

  // Degrees are known from the partition metadata, so allocate exactly and
  // fill via per-vertex cursors (single pass over the candidate pages).
  for (size_t i = 0; i < vids.size(); ++i) {
    out->offsets[i + 1] =
        out->offsets[i] + pg_->out_degree[vids[i]];
  }
  out->dsts.resize(out->offsets.back());
  std::vector<uint64_t> cursor(out->offsets.begin(),
                               out->offsets.end() - 1);

  Machine* machine = cluster_->machine(machine_id_);
  const MachinePartition& part = pg_->machines[machine_id_];
  TGPP_ASSIGN_OR_RETURN(
      PageFile file,
      PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));

  const VertexId lo = vids.front();
  const VertexId hi = vids.back();

  // Iterate chunks in (src_chunk, dst_chunk, sub) order: destination IDs of
  // consecutive chunks ascend, so per-source appends stay sorted on a
  // static graph. Mutation delta pages break that order; they are scanned
  // after the chunk's base pages and the merged lists are re-sorted below.
  for (const EdgeChunkInfo& chunk : part.chunks) {
    if (chunk.num_pages == 0 && chunk.delta_pages.empty()) continue;
    if (chunk.src_range.end <= lo || chunk.src_range.begin > hi) continue;
    for (const uint64_t page_no : chunk.PageNumbers()) {
      const PageIndexEntry& entry = part.page_index[page_no];
      TGPP_DCHECK(entry.page_no == page_no);
      if (entry.src_max < lo || entry.src_min > hi) continue;
      TGPP_ASSIGN_OR_RETURN(PageHandle handle,
                            machine->buffer_pool()->Fetch(&file, page_no));
      SlottedPageReader reader(handle.data());
      // Bounds-check the on-disk slot directory before trusting it.
      TGPP_RETURN_IF_ERROR(reader.Validate());
      const uint32_t num_slots = reader.num_slots();
      for (uint32_t s = 0; s < num_slots; ++s) {
        const VertexId src = reader.SrcAt(s);
        auto it = std::lower_bound(vids.begin(), vids.end(), src);
        if (it == vids.end() || *it != src) continue;
        const size_t idx = static_cast<size_t>(it - vids.begin());
        const std::span<const VertexId> record = reader.DstsAt(s);
        if (cursor[idx] + record.size() > out->offsets[idx + 1]) {
          return Status::Corruption(
              "materialized degree overflow for vertex " +
              std::to_string(vids[idx]));
        }
        std::copy(record.begin(), record.end(),
                  out->dsts.begin() + cursor[idx]);
        cursor[idx] += record.size();
      }
    }
  }
  for (size_t i = 0; i < vids.size(); ++i) {
    if (cursor[i] != out->offsets[i + 1]) {
      return Status::Corruption(
          "materialized degree mismatch for vertex " +
          std::to_string(vids[i]) + ": got " +
          std::to_string(cursor[i] - out->offsets[i]) + ", expected " +
          std::to_string(pg_->out_degree[vids[i]]));
    }
  }
  if (pg_->mutated()) {
    // Restore the sorted-dst invariant that consumers (sorted-list
    // intersection, NeighborsOf) rely on.
    for (size_t i = 0; i < vids.size(); ++i) {
      std::sort(out->dsts.begin() + out->offsets[i],
                out->dsts.begin() + out->offsets[i + 1]);
    }
  }
  return Status::OK();
}

Status AdjacencyService::Fetch(int owner, std::span<const VertexId> vids,
                               AdjBatch* out) {
  if (owner == machine_id_) return MaterializeLocal(vids, out);

  const uint64_t request_id = next_request_id_++;
  std::vector<uint8_t> payload;
  AppendPod<uint64_t>(&payload, request_id);
  AppendPod<uint64_t>(&payload, vids.size());
  AppendPodSpan<VertexId>(&payload, vids);
  cluster_->fabric()->Send(machine_id_, owner, RequestTag(),
                           std::move(payload));

  Message reply;
  TGPP_RETURN_IF_ERROR(cluster_->fabric()->RecvFor(
      machine_id_, ResponseTag(), &reply, recv_timeout_ms_));
  PodReader reader(reply.payload);
  const uint64_t got_id = reader.Read<uint64_t>();
  TGPP_CHECK(got_id == request_id)
      << "adjacency response out of order (engine fetches serially)";
  const uint8_t remote_code = reader.Read<uint8_t>();
  if (remote_code != 0) {
    return Status(static_cast<StatusCode>(remote_code),
                  "remote adjacency materialization failed on machine " +
                      std::to_string(owner));
  }
  const uint64_t count = reader.Read<uint64_t>();
  out->vids.resize(count);
  out->offsets.assign(count + 1, 0);
  out->dsts.clear();
  for (uint64_t i = 0; i < count; ++i) {
    out->vids[i] = reader.Read<VertexId>();
    const uint64_t degree = reader.Read<uint64_t>();
    out->offsets[i + 1] = out->offsets[i] + degree;
  }
  out->dsts.resize(out->offsets.back());
  reader.ReadSpan(out->dsts.data(), out->dsts.size());
  return Status::OK();
}

void AdjacencyService::Start() {
  TGPP_CHECK(!server_.joinable());
  server_ = std::thread([this] { ServeLoop(); });
}

void AdjacencyService::Stop() {
  if (!server_.joinable()) return;
  // An empty request addressed to ourselves is the stop marker.
  cluster_->fabric()->Send(machine_id_, machine_id_, RequestTag(), {});
  server_.join();
}

void AdjacencyService::ServeLoop() {
  Fabric* fabric = cluster_->fabric();
  Message request;
  AdjBatch batch;
  while (fabric->Recv(machine_id_, RequestTag(), &request)) {
    if (request.payload.empty()) break;  // stop marker
    PodReader reader(request.payload);
    const uint64_t request_id = reader.Read<uint64_t>();
    const uint64_t count = reader.Read<uint64_t>();
    std::vector<VertexId> vids(count);
    reader.ReadSpan(vids.data(), count);

    // A failed materialization (e.g. an injected disk error surviving the
    // retry policy) is reported to the requester as a status byte rather
    // than aborting the process: the requester's scatter fails with a
    // proper Status and engine-level recovery can take over.
    Status status = MaterializeLocal(vids, &batch);
    std::vector<uint8_t> payload;
    AppendPod<uint64_t>(&payload, request_id);
    AppendPod<uint8_t>(&payload, static_cast<uint8_t>(status.code()));
    if (status.ok()) {
      AppendPod<uint64_t>(&payload, batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        AppendPod<VertexId>(&payload, batch.vids[i]);
        AppendPod<uint64_t>(&payload,
                            batch.offsets[i + 1] - batch.offsets[i]);
      }
      AppendPodSpan<VertexId>(&payload,
                              std::span<const VertexId>(batch.dsts));
    }
    fabric->Send(machine_id_, request.src, ResponseTag(),
                 std::move(payload));
  }
}

}  // namespace tgpp
