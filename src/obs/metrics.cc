#include "obs/metrics.h"

#include <chrono>

namespace tgpp::obs {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

uint64_t LatencyHistogram::Quantile(double q) const {
  uint64_t snapshot[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  // Use the summed snapshot rather than count_: the two are updated with
  // independent relaxed ops, and the quantile walk must be internally
  // consistent with the bucket array it scans.
  return histogram_internal::QuantileFromBuckets(snapshot, total, q);
}

Histogram LatencyHistogram::SnapshotHistogram() const {
  Histogram out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    // Re-add a representative value per sample would be O(count); instead
    // replay each bucket at its lower bound, which lands in the same
    // bucket and preserves counts (sums/extrema are approximate).
    for (uint64_t k = 0; k < n; ++k) {
      out.Add(histogram_internal::BucketLowerBound(i));
    }
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Result<Registration> Registry::Register(const std::string& name, int machine,
                                        Counter* counter) {
  Entry e;
  e.kind = Kind::kCounter;
  e.counter = counter;
  return RegisterEntry(name, machine, e);
}

Result<Registration> Registry::Register(const std::string& name, int machine,
                                        Gauge* gauge) {
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = gauge;
  return RegisterEntry(name, machine, e);
}

Result<Registration> Registry::Register(const std::string& name, int machine,
                                        LatencyHistogram* histogram) {
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = histogram;
  return RegisterEntry(name, machine, e);
}

Result<Registration> Registry::RegisterEntry(const std::string& name,
                                             int machine, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(name, machine);
  if (entries_.count(key) > 0) {
    return Status::AlreadyExists("metric already registered: " + name +
                                 " machine=" + std::to_string(machine));
  }
  entry.id = next_id_++;
  const uint64_t id = entry.id;
  entries_.emplace(std::move(key), entry);
  return Registration(this, name, machine, id);
}

void Registry::Unregister(const std::string& name, int machine, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::make_pair(name, machine));
  // The id check guards against A-unregisters-after-B-reregistered races:
  // only the handle that actually owns the slot may clear it.
  if (it != entries_.end() && it->second.id == id) entries_.erase(it);
}

void Registry::Visit(
    const std::function<void(const InstrumentInfo&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    InstrumentInfo info{key.first, key.second, entry.kind, entry.counter,
                        entry.gauge, entry.histogram};
    fn(info);
  }
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Registration::Release() {
  if (registry_ == nullptr) return;
  registry_->Unregister(name_, machine_, id_);
  registry_ = nullptr;
}

}  // namespace tgpp::obs
