// Structured event log: job-correlated lifecycle events as JSONL
// (docs/OBSERVABILITY.md).
//
// Metrics (obs/metrics.h) answer "how much", traces (util/trace.h) answer
// "when on which thread" — this log answers "what happened to which JOB":
// submit/admit/start, per-superstep progress, checkpoints, retries,
// recoveries, lost machines, terminal states. Every event carries the
// schema version and a `job_id`, the same id the service's JobRecord,
// JobProfile, trace tracks and `service.*` metrics use, so an operator can
// join all four planes on one key without rerunning anything.
//
// Design (mirrors the tracer's constraints — this sits on the engine's
// superstep path):
//  - Disabled cost is one relaxed atomic load per site.
//  - The emit path is lock-free: each thread owns a fixed-capacity ring of
//    Event records (single writer); the process-wide registry locks only
//    on first-emit-per-thread registration, and exited threads park their
//    rings on a free list for reuse.
//  - Event type/detail/argument-key strings must be string literals (only
//    pointers are stored).
//  - Rings overwrite their oldest *undrained* events when full; the loss
//    is counted in the `events.dropped` metric and EventStats().
//  - DrainEvents() may run concurrently with emitters (the serve daemon
//    streams the log to disk while jobs run): a slot that wrapped during
//    the copy is detected via the ring's write count and discarded as
//    dropped rather than surfaced torn.
//
// Usage:
//   obs::SetEventsEnabled(true);
//   obs::EmitEvent(obs::EventType::kJobSubmit, job_id);
//   obs::EmitEvent(obs::EventType::kSuperstep, job_id, /*machine=*/-1,
//                  step, nullptr, "active", n_active);
//   TGPP_RETURN_IF_ERROR(obs::AppendEventsFile("events.jsonl"));

#ifndef TGPP_OBS_EVENTS_H_
#define TGPP_OBS_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tgpp::obs {

// Bumped when Event::ToJson changes keys or their meaning; every emitted
// line carries it as "v" so consumers can reject lines they don't speak.
inline constexpr int kEventSchemaVersion = 1;

// The closed set of event types. Names (EventTypeName) are the wire
// vocabulary; tools/check_docs.sh fails if any is missing from
// docs/OBSERVABILITY.md.
enum class EventType : uint8_t {
  // Service job lifecycle (src/service/job_manager.cc).
  kJobSubmit,
  kJobAdmit,
  kJobStart,
  kJobRetry,
  kJobDone,
  kJobFailed,
  kJobCancelled,
  // Engine execution (src/core/engine.h), tagged with EngineOptions::job_id.
  kSuperstep,
  kCheckpoint,
  kResume,
  kRecovery,
  kEngineMachineLost,
  // Fabric heartbeat monitor (src/net/fabric.cc), cluster-scoped.
  kMachineLost,
  // Buffer pool (src/storage/buffer_pool.cc): a page read that failed and
  // withdrew its in-flight entry (rare; job-attributed via ambient id).
  kPoolReadFailed,
  // Dynamic graphs (src/dyn/dynamic_graph.cc): an update batch committed
  // as a new epoch / a recovery pass replayed uncommitted WAL batches.
  kUpdateApplied,
  kWalReplayed,
};

const char* EventTypeName(EventType type);

// One recorded event. Fixed-size and trivially copyable so the ring write
// is a plain struct store; all strings are literals.
struct Event {
  EventType type = EventType::kJobSubmit;
  int32_t machine = -1;    // simulated machine id; -1 = unattributed
  int32_t superstep = -1;  // -1 = not superstep-scoped
  uint64_t job_id = 0;     // 0 = no job (standalone run / cluster scope)
  int64_t ts_nanos = 0;    // monotonic, same epoch as trace::NowNanos()
  const char* detail = nullptr;  // literal annotation (e.g. a status code)
  const char* arg_name0 = nullptr;
  const char* arg_name1 = nullptr;
  const char* arg_name2 = nullptr;
  uint64_t arg_value0 = 0;
  uint64_t arg_value1 = 0;
  uint64_t arg_value2 = 0;

  // One JSONL object (no trailing newline). Stable key order:
  // v, ts_ns, type, job, then machine/superstep/args/detail when present.
  std::string ToJson() const;
};

namespace internal {
extern std::atomic<bool> g_events_enabled;
void RecordEvent(const Event& ev);
}  // namespace internal

inline bool EventsEnabled() {
  return internal::g_events_enabled.load(std::memory_order_relaxed);
}
void SetEventsEnabled(bool enabled);

// Drops all recorded events and resets drain cursors + stats (rings stay
// allocated). Call between tests, not while emitters run.
void ResetEvents();

// Ambient job id for the calling thread. The engine stamps its worker
// lambdas with EngineOptions::job_id so events emitted beneath them —
// fabric, buffer pool, checkpoint I/O — attribute to the right job even
// though those layers never see a job id parameter. EmitEvent uses it
// whenever the explicit job_id argument is 0.
void SetCurrentJob(uint64_t job_id);
uint64_t CurrentJob();

// Emits one event (no-op while disabled). Key strings must be literals.
void EmitEvent(EventType type, uint64_t job_id = 0, int machine = -1,
               int superstep = -1, const char* detail = nullptr,
               const char* arg_name0 = nullptr, uint64_t arg_value0 = 0,
               const char* arg_name1 = nullptr, uint64_t arg_value1 = 0,
               const char* arg_name2 = nullptr, uint64_t arg_value2 = 0);

struct EventLogStats {
  uint64_t recorded = 0;  // events ever emitted (monotonic)
  uint64_t dropped = 0;   // lost to ring wrap before a drain
  int threads = 0;        // thread slots ever registered
};
EventLogStats EventStats();

// Removes and returns every event recorded since the last drain, merged
// across threads and sorted by timestamp. Safe to call while emitters run
// (see header comment); wrapped-over slots count as dropped.
std::vector<Event> DrainEvents();

// Renders DrainEvents() as JSONL and appends it to `path` (created if
// missing). The serve/run `--events-out` sinks call this periodically.
Status AppendEventsFile(const std::string& path);

}  // namespace tgpp::obs

#endif  // TGPP_OBS_EVENTS_H_
