#include "obs/events.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "util/trace.h"

namespace tgpp::obs {

namespace internal {
std::atomic<bool> g_events_enabled{false};
}  // namespace internal

namespace {

// Per-ring capacity. Events are per-superstep / per-lifecycle-transition,
// orders of magnitude rarer than trace events, so a small ring holds many
// jobs' worth between the serve daemon's 200 ms drains.
constexpr uint64_t kEventRingCapacity = 1 << 12;

// Single-writer event ring with a drain cursor. `count` is the total ever
// written (release-published after each slot store); `drained` is the
// reader's cursor, guarded by the registry mutex. A writer that laps the
// cursor overwrites undrained events — DrainEvents detects the overlap
// from `count` and accounts it as dropped.
struct EventRing {
  std::vector<Event> ring{std::vector<Event>(kEventRingCapacity)};
  std::atomic<uint64_t> count{0};
  uint64_t drained = 0;  // registry-mutex protected
};

struct EventRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<EventRing>> rings;  // all ever registered
  std::vector<std::shared_ptr<EventRing>> free_list;
  uint64_t dropped = 0;  // drain-observed losses (mu-protected)
};

EventRegistry& GetEventRegistry() {
  static EventRegistry* registry = new EventRegistry();
  return *registry;
}

// The events.dropped metric (docs/METRICS.md), registered on first use so
// plain library consumers that never emit events don't export the series.
struct DroppedMetric {
  Counter counter;
  std::vector<Registration> registrations;
  DroppedMetric() {
    TryRegister(&Registry::Global(), &registrations, "events.dropped", -1,
                &counter);
  }
};

Counter& DroppedCounter() {
  static DroppedMetric* metric = new DroppedMetric();
  return metric->counter;
}

struct EventTlsSlot {
  std::shared_ptr<EventRing> ring;
  uint64_t job_id = 0;

  ~EventTlsSlot() {
    if (ring == nullptr) return;
    EventRegistry& registry = GetEventRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.free_list.push_back(std::move(ring));
  }
};

thread_local EventTlsSlot event_tls;

EventRing* GetEventRing() {
  if (event_tls.ring == nullptr) {
    EventRegistry& registry = GetEventRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    if (!registry.free_list.empty()) {
      event_tls.ring = std::move(registry.free_list.back());
      registry.free_list.pop_back();
    } else {
      event_tls.ring = std::make_shared<EventRing>();
      registry.rings.push_back(event_tls.ring);
    }
  }
  return event_tls.ring.get();
}

}  // namespace

// The wire vocabulary. One `return "...";` per line between the markers —
// tools/check_docs.sh extracts these names and fails if any is missing
// from docs/OBSERVABILITY.md.
const char* EventTypeName(EventType type) {
  switch (type) {
    // EVENT-TYPES-BEGIN
    case EventType::kJobSubmit:
      return "job.submit";
    case EventType::kJobAdmit:
      return "job.admit";
    case EventType::kJobStart:
      return "job.start";
    case EventType::kJobRetry:
      return "job.retry";
    case EventType::kJobDone:
      return "job.done";
    case EventType::kJobFailed:
      return "job.failed";
    case EventType::kJobCancelled:
      return "job.cancelled";
    case EventType::kSuperstep:
      return "superstep";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kResume:
      return "resume";
    case EventType::kRecovery:
      return "recovery";
    case EventType::kEngineMachineLost:
      return "engine.machine_lost";
    case EventType::kMachineLost:
      return "machine.lost";
    case EventType::kPoolReadFailed:
      return "pool.read_failed";
    case EventType::kUpdateApplied:
      return "update.applied";
    case EventType::kWalReplayed:
      return "wal.replayed";
      // EVENT-TYPES-END
  }
  return "unknown";
}

std::string Event::ToJson() const {
  std::string out = "{\"v\":";
  out += std::to_string(kEventSchemaVersion);
  out += ",\"ts_ns\":";
  out += std::to_string(ts_nanos);
  out += ",\"type\":\"";
  out += EventTypeName(type);
  out += "\",\"job\":";
  out += std::to_string(job_id);
  if (machine >= 0) {
    out += ",\"machine\":";
    out += std::to_string(machine);
  }
  if (superstep >= 0) {
    out += ",\"superstep\":";
    out += std::to_string(superstep);
  }
  for (const auto& [key, value] :
       {std::pair{arg_name0, arg_value0}, std::pair{arg_name1, arg_value1},
        std::pair{arg_name2, arg_value2}}) {
    if (key == nullptr) continue;
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  }
  if (detail != nullptr) {
    // Details are string literals from our own code (status code names,
    // directions) — no characters that need JSON escaping.
    out += ",\"detail\":\"";
    out += detail;
    out += '"';
  }
  out += '}';
  return out;
}

namespace internal {

void RecordEvent(const Event& ev) {
  EventRing* ring = GetEventRing();
  const uint64_t n = ring->count.load(std::memory_order_relaxed);
  ring->ring[n % kEventRingCapacity] = ev;
  ring->count.store(n + 1, std::memory_order_release);
}

}  // namespace internal

void SetEventsEnabled(bool enabled) {
  internal::g_events_enabled.store(enabled, std::memory_order_relaxed);
}

void ResetEvents() {
  EventRegistry& registry = GetEventRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& ring : registry.rings) {
    ring->count.store(0, std::memory_order_relaxed);
    ring->drained = 0;
  }
  registry.dropped = 0;
}

void SetCurrentJob(uint64_t job_id) { event_tls.job_id = job_id; }

uint64_t CurrentJob() { return event_tls.job_id; }

void EmitEvent(EventType type, uint64_t job_id, int machine, int superstep,
               const char* detail, const char* arg_name0,
               uint64_t arg_value0, const char* arg_name1,
               uint64_t arg_value1, const char* arg_name2,
               uint64_t arg_value2) {
  if (!EventsEnabled()) return;
  Event ev;
  ev.type = type;
  ev.job_id = job_id != 0 ? job_id : event_tls.job_id;
  ev.machine = machine;
  ev.superstep = superstep;
  ev.ts_nanos = trace::NowNanos();
  ev.detail = detail;
  ev.arg_name0 = arg_name0;
  ev.arg_value0 = arg_value0;
  ev.arg_name1 = arg_name1;
  ev.arg_value1 = arg_value1;
  ev.arg_name2 = arg_name2;
  ev.arg_value2 = arg_value2;
  internal::RecordEvent(ev);
}

EventLogStats EventStats() {
  EventRegistry& registry = GetEventRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  EventLogStats stats;
  stats.threads = static_cast<int>(registry.rings.size());
  stats.dropped = registry.dropped;
  for (const auto& ring : registry.rings) {
    const uint64_t n = ring->count.load(std::memory_order_acquire);
    stats.recorded += n;
    // Undrained events already wrapped over (drain would discard them).
    if (n > ring->drained + kEventRingCapacity) {
      stats.dropped += n - ring->drained - kEventRingCapacity;
    }
  }
  return stats;
}

std::vector<Event> DrainEvents() {
  EventRegistry& registry = GetEventRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<Event> events;
  uint64_t dropped = 0;
  for (const auto& ring : registry.rings) {
    const uint64_t n = ring->count.load(std::memory_order_acquire);
    uint64_t start = ring->drained;
    if (n > start + kEventRingCapacity) {
      // The writer lapped the cursor: the oldest undrained events are
      // gone. Everything still in the ring is salvageable.
      dropped += n - kEventRingCapacity - start;
      start = n - kEventRingCapacity;
    }
    for (uint64_t i = start; i < n; ++i) {
      Event copy = ring->ring[i % kEventRingCapacity];
      // Concurrent-writer guard: if the writer advanced past this slot
      // while we copied it, the copy may be torn — discard it. The
      // re-read is ordered after the copy by the acquire fence.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (ring->count.load(std::memory_order_relaxed) >=
          i + kEventRingCapacity) {
        ++dropped;
        continue;
      }
      events.push_back(copy);
    }
    ring->drained = n;
  }
  registry.dropped += dropped;
  if (dropped > 0) DroppedCounter().Add(dropped);
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.ts_nanos < b.ts_nanos;
            });
  return events;
}

Status AppendEventsFile(const std::string& path) {
  const std::vector<Event> events = DrainEvents();
  if (events.empty()) return Status::OK();
  std::string text;
  text.reserve(events.size() * 128);
  for (const Event& ev : events) {
    text += ev.ToJson();
    text += '\n';
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IOError("cannot open events file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !close_ok) {
    return Status::IOError("short write to events file: " + path);
  }
  return Status::OK();
}

}  // namespace tgpp::obs
