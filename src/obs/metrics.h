// Unified metrics layer: typed instruments + a process-wide registry.
//
// The paper's whole evaluation (§5, Figures 9-12) is built on decomposed
// resource measurement — per-phase CPU, disk/network bytes, and
// bottleneck-machine views. This header is the one substrate behind all of
// it: every subsystem (buffer pool, disk device, fabric, thread pools, the
// NWSM engine) owns typed instruments, registers them here under a
// canonical dotted name with a machine label, and the exporters in
// obs/export.h turn the registry into Prometheus text exposition and
// per-superstep JSONL (docs/METRICS.md has the full name catalog).
//
// Design constraints (instruments sit on the engine's hot paths):
//  - Counter::Add / Gauge::Set / LatencyHistogram::Record cost exactly one
//    relaxed atomic RMW each (the histogram adds two for count/sum);
//    no locks, no allocation, no branches beyond the compile-out guard.
//  - Instruments are owned by the subsystem that updates them (so
//    object-scoped accessors like DiskDevice::bytes_read() stay exact even
//    with several devices alive); the registry holds non-owning pointers
//    and a Registration handle unregisters on destruction.
//  - Registration of an already-taken (name, machine) key is rejected —
//    two live objects cannot silently share an exported series.
//  - Compile instrumentation out with -DTGPP_DISABLE_METRICS to measure
//    its overhead (bench/bench_micro_substrates.cc); such a build reports
//    zeros everywhere but runs the identical engine code.

#ifndef TGPP_OBS_METRICS_H_
#define TGPP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace tgpp::obs {

#ifdef TGPP_DISABLE_METRICS
inline constexpr bool kMetricsCompiledOut = true;
#else
inline constexpr bool kMetricsCompiledOut = false;
#endif

// Monotonic nanosecond clock for latency instruments (steady, process-wide
// comparable — the same clock the tracer uses).
int64_t MonotonicNanos();

// --- instruments -----------------------------------------------------------

// Monotonically increasing count (bytes moved, cache hits, retries).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if constexpr (kMetricsCompiledOut) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (queue depth, resident pages, active vertices).
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kMetricsCompiledOut) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if constexpr (kMetricsCompiledOut) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Lock-free exponential-bucket histogram for latency distributions, the
// concurrent sibling of util's Histogram (same power-of-two buckets, same
// interpolated quantile math via histogram_internal). Writers never block;
// readers see a near-consistent snapshot (count/sum/buckets are updated
// with independent relaxed ops, so a mid-Record read can be off by one
// sample — irrelevant for p50/p95/p99 reporting).
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = histogram_internal::kNumBuckets;

  void Record(uint64_t value) {
    if constexpr (kMetricsCompiledOut) return;
    buckets_[histogram_internal::BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  // Interpolated quantile estimate (q in [0,1]) from the bucket counts;
  // same estimator as Histogram::Quantile.
  uint64_t Quantile(double q) const;

  // Copies the bucket counts into a plain Histogram (for ToString, Merge
  // with offline histograms, and tests).
  Histogram SnapshotHistogram() const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Accumulates elapsed thread-CPU nanoseconds into a Counter for the
// lifetime of the scope (the obs replacement for ScopedCpuAccumulator).
class ScopedCpuCounter {
 public:
  explicit ScopedCpuCounter(Counter* sink)
      : sink_(sink), start_(ThreadCpuTimeNanos()) {}
  ~ScopedCpuCounter() {
    sink_->Add(static_cast<uint64_t>(ThreadCpuTimeNanos() - start_));
  }

  ScopedCpuCounter(const ScopedCpuCounter&) = delete;
  ScopedCpuCounter& operator=(const ScopedCpuCounter&) = delete;

 private:
  Counter* sink_;
  int64_t start_;
};

// Increments a Gauge for the lifetime of the scope and decrements it on
// exit — level tracking ("jobs currently running") that stays correct on
// every return path.
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge* gauge, int64_t delta = 1)
      : gauge_(gauge), delta_(delta) {
    gauge_->Add(delta_);
  }
  ~GaugeGuard() {
    if (gauge_ != nullptr) gauge_->Add(-delta_);
  }

  GaugeGuard(GaugeGuard&& other) noexcept
      : gauge_(other.gauge_), delta_(other.delta_) {
    other.gauge_ = nullptr;
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;
  GaugeGuard& operator=(GaugeGuard&&) = delete;

 private:
  Gauge* gauge_;
  int64_t delta_;
};

// Records elapsed wall nanoseconds into a LatencyHistogram on scope exit.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* sink)
      : sink_(sink),
        start_(kMetricsCompiledOut ? 0 : MonotonicNanos()) {}
  ~ScopedLatencyTimer() {
    if constexpr (kMetricsCompiledOut) return;
    sink_->Record(static_cast<uint64_t>(MonotonicNanos() - start_));
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LatencyHistogram* sink_;
  int64_t start_;
};

// --- registry --------------------------------------------------------------

enum class Kind { kCounter, kGauge, kHistogram };
const char* KindName(Kind kind);

// One registered instrument, as seen by Registry::Visit. Exactly one of
// the three pointers is non-null, matching `kind`.
struct InstrumentInfo {
  const std::string& name;  // canonical dotted name, e.g. "disk.read_bytes"
  int machine;              // simulated machine id; -1 = cluster/process
  Kind kind;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const LatencyHistogram* histogram = nullptr;
};

class Registry;

// Move-only handle: unregisters its instrument when destroyed. An invalid
// handle (default-constructed, moved-from, or from a rejected Register)
// does nothing.
class Registration {
 public:
  Registration() = default;
  ~Registration() { Release(); }

  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept {
    Release();
    registry_ = other.registry_;
    name_ = std::move(other.name_);
    machine_ = other.machine_;
    id_ = other.id_;
    other.registry_ = nullptr;
    return *this;
  }

  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;

  bool valid() const { return registry_ != nullptr; }
  void Release();

 private:
  friend class Registry;
  Registration(Registry* registry, std::string name, int machine,
               uint64_t id)
      : registry_(registry),
        name_(std::move(name)),
        machine_(machine),
        id_(id) {}

  Registry* registry_ = nullptr;
  std::string name_;
  int machine_ = -1;
  uint64_t id_ = 0;
};

// Process-wide instrument directory, keyed by (dotted name, machine).
// Registration and visiting take a mutex; the instruments themselves are
// updated without ever touching the registry, so nothing here is on a hot
// path. Visit() reads values under the lock, so an instrument can never be
// unregistered (and its owner destroyed) mid-export.
class Registry {
 public:
  static Registry& Global();

  Result<Registration> Register(const std::string& name, int machine,
                                Counter* counter);
  Result<Registration> Register(const std::string& name, int machine,
                                Gauge* gauge);
  Result<Registration> Register(const std::string& name, int machine,
                                LatencyHistogram* histogram);

  // Calls fn once per registered instrument, ordered by (name, machine),
  // holding the registry lock throughout.
  void Visit(const std::function<void(const InstrumentInfo&)>& fn) const;

  // Zeroes every registered counter/gauge/histogram.
  void ResetAll();

  size_t size() const;

 private:
  friend class Registration;

  struct Entry {
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    LatencyHistogram* histogram = nullptr;
    uint64_t id = 0;
  };

  Result<Registration> RegisterEntry(const std::string& name, int machine,
                                     Entry entry);
  void Unregister(const std::string& name, int machine, uint64_t id);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, Entry> entries_;
  uint64_t next_id_ = 1;
};

// Convenience for subsystems registering a batch of instruments: register
// into `out`, silently skipping names already taken (a second concurrent
// cluster simply isn't exported; the first owner keeps the series).
template <typename Instrument>
void TryRegister(Registry* registry, std::vector<Registration>* out,
                 const std::string& name, int machine,
                 Instrument* instrument) {
  auto reg = registry->Register(name, machine, instrument);
  if (reg.ok()) out->push_back(std::move(*reg));
}

}  // namespace tgpp::obs

#endif  // TGPP_OBS_METRICS_H_
