#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace tgpp::obs {

namespace {

// %g gives compact output but may print exponents; Prometheus accepts
// both, and the tests only require `name{labels} value` shape.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string LabelSet(int machine, const char* extra_key = nullptr,
                     const char* extra_value = nullptr) {
  std::ostringstream os;
  bool any = false;
  os << "{";
  if (machine >= 0) {
    os << "machine=\"" << machine << "\"";
    any = true;
  }
  if (extra_key != nullptr) {
    if (any) os << ",";
    os << extra_key << "=\"" << extra_value << "\"";
    any = true;
  }
  os << "}";
  return any ? os.str() : "";
}

}  // namespace

std::string PrometheusName(const std::string& dotted_name) {
  std::string out = "tgpp_";
  out.reserve(dotted_name.size() + out.size());
  for (char c : dotted_name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderPrometheus(const Registry& registry) {
  std::ostringstream os;
  std::string last_family;
  registry.Visit([&](const InstrumentInfo& info) {
    const std::string name = PrometheusName(info.name);
    if (name != last_family) {
      // Visit is ordered by (name, machine), so all samples of a family
      // are contiguous and the TYPE comment is emitted exactly once.
      const char* type = info.kind == Kind::kCounter  ? "counter"
                         : info.kind == Kind::kGauge  ? "gauge"
                                                      : "summary";
      os << "# TYPE " << name << " " << type << "\n";
      last_family = name;
    }
    switch (info.kind) {
      case Kind::kCounter:
        os << name << LabelSet(info.machine) << " " << info.counter->value()
           << "\n";
        break;
      case Kind::kGauge:
        os << name << LabelSet(info.machine) << " " << info.gauge->value()
           << "\n";
        break;
      case Kind::kHistogram: {
        const LatencyHistogram* h = info.histogram;
        static constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
        static constexpr const char* kQuantileLabels[] = {"0.5", "0.95",
                                                          "0.99"};
        for (int i = 0; i < 3; ++i) {
          os << name << LabelSet(info.machine, "quantile", kQuantileLabels[i])
             << " " << h->Quantile(kQuantiles[i]) << "\n";
        }
        os << name << "_sum" << LabelSet(info.machine) << " " << h->sum()
           << "\n";
        os << name << "_count" << LabelSet(info.machine) << " " << h->count()
           << "\n";
        break;
      }
    }
  });
  return os.str();
}

Status WritePrometheusFile(const Registry& registry,
                           const std::string& path) {
  const std::string text = RenderPrometheus(registry);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics file: " + tmp);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !close_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to metrics file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename metrics file into place: " + path);
  }
  return Status::OK();
}

std::string SuperstepRow::ToJson() const {
  std::ostringstream os;
  os << "{\"type\":\"superstep\",\"superstep\":" << superstep
     << ",\"active_vertices\":" << active_vertices
     << ",\"updates_generated\":" << updates_generated
     << ",\"updates_sent\":" << updates_sent
     << ",\"updates_spilled\":" << updates_spilled
     << ",\"disk_bytes\":" << disk_bytes << ",\"net_bytes\":" << net_bytes
     << ",\"buffer_hit_rate\":" << FormatDouble(buffer_hit_rate)
     << ",\"superstep_seconds\":" << FormatDouble(superstep_seconds)
     << ",\"elapsed_seconds\":" << FormatDouble(elapsed_seconds)
     << ",\"scatter_cpu_seconds\":" << FormatDouble(scatter_cpu_seconds)
     << ",\"gather_cpu_seconds\":" << FormatDouble(gather_cpu_seconds)
     << ",\"apply_cpu_seconds\":" << FormatDouble(apply_cpu_seconds)
     << ",\"direction\":\"" << direction << "\"}";
  return os.str();
}

std::string SuperstepRow::ToProgressLine() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "superstep %3d (%s) | active %10llu | updates %10llu | "
                "disk %10llu B | net %10llu B | hit %5.1f%% | %7.3fs",
                superstep, direction,
                static_cast<unsigned long long>(active_vertices),
                static_cast<unsigned long long>(updates_generated),
                static_cast<unsigned long long>(disk_bytes),
                static_cast<unsigned long long>(net_bytes),
                buffer_hit_rate * 100.0, elapsed_seconds);
  return buf;
}

}  // namespace tgpp::obs
