// Exporters over the metrics registry (obs/metrics.h):
//  - Prometheus text exposition (`tgpp run --metrics-out=<file>`), written
//    at exit and refreshed at every superstep barrier;
//  - per-superstep rows, emitted by the engine through
//    EngineOptions::superstep_observer, rendered either as JSONL time
//    series (bench harness, TGPP_BENCH_JSON) or as one human-readable
//    progress line (`tgpp run --progress`).
// Format details and the metric name catalog are in docs/METRICS.md.

#ifndef TGPP_OBS_EXPORT_H_
#define TGPP_OBS_EXPORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace tgpp::obs {

// "disk.read_bytes" -> "tgpp_disk_read_bytes" (dots and other
// non-[a-zA-Z0-9_] characters become underscores).
std::string PrometheusName(const std::string& dotted_name);

// Renders every registered instrument in Prometheus text exposition
// format: `# TYPE` comment per metric family, one `name{labels} value`
// sample per line, `machine="<id>"` label (omitted for machine == -1),
// histograms as summaries (quantile 0.5/0.95/0.99 + _sum/_count).
std::string RenderPrometheus(const Registry& registry);

// Atomically replaces `path` with RenderPrometheus(registry) (write to
// `path.tmp`, then rename) so a concurrent reader never sees a torn file.
Status WritePrometheusFile(const Registry& registry, const std::string& path);

// One superstep's worth of engine activity. Counters are deltas for that
// superstep; hit rate and elapsed time are cumulative since Run() started.
struct SuperstepRow {
  int superstep = 0;
  uint64_t active_vertices = 0;   // global frontier entering this superstep
  uint64_t updates_generated = 0;
  uint64_t updates_sent = 0;
  uint64_t updates_spilled = 0;
  uint64_t disk_bytes = 0;        // read + written across all machines
  uint64_t net_bytes = 0;         // fabric payload + header bytes
  double buffer_hit_rate = 0.0;   // cumulative, in [0, 1]
  double superstep_seconds = 0.0; // wall time of this superstep
  double elapsed_seconds = 0.0;   // wall time since Run() started
  // Per-phase CPU time this superstep, summed across machines (the §5.2.3
  // decomposition, per superstep). Deltas of the cluster-wide phase
  // counters: exact for a lone engine, approximate attribution when
  // concurrent service jobs share the machines (docs/OBSERVABILITY.md).
  double scatter_cpu_seconds = 0.0;
  double gather_cpu_seconds = 0.0;
  double apply_cpu_seconds = 0.0;
  // Scatter direction this superstep ran in: "push" or "pull"
  // (algos/frontier.h; always "push" unless direction optimization is on).
  const char* direction = "push";

  // One JSONL object (no trailing newline), tagged "type":"superstep".
  std::string ToJson() const;

  // One aligned human-readable line for --progress mode.
  std::string ToProgressLine() const;
};

}  // namespace tgpp::obs

#endif  // TGPP_OBS_EXPORT_H_
