// JobServer: the `tgpp serve` daemon's socket front-end (docs/SERVICE.md).
//
// Listens on a unix-domain socket or loopback TCP, speaks one JSON object
// per line in each direction, and translates the protocol verbs
// (submit/status/wait/cancel/jobs/profile/shutdown) into JobManager
// calls. Each connection gets its own thread — connections are few (CLI
// clients and bench harnesses), and a blocking `wait` must not starve
// other clients.
//
// The same port doubles as a minimal HTTP/1.0 introspection surface
// (docs/OBSERVABILITY.md): a connection whose first line starts with
// "GET " is answered with one HTTP response and closed. Endpoints:
// /metrics (Prometheus text), /jobs (records + profiles), /healthz
// (200 while every machine's heartbeat is live, 503 otherwise). Curl and
// Prometheus both speak HTTP/1.0-with-close fine; no keep-alive, no
// chunking, no routing beyond exact paths.

#ifndef TGPP_SERVICE_SERVER_H_
#define TGPP_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/job_manager.h"

namespace tgpp::service {

struct ServerOptions {
  // Exactly one transport: a unix socket path, or (when empty) loopback
  // TCP on `tcp_port` (0 = kernel-assigned ephemeral port, see port()).
  std::string unix_path;
  int tcp_port = 0;
};

class JobServer {
 public:
  JobServer(JobManager* manager, ServerOptions options);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  // Binds + listens + starts the accept thread.
  Status Start();

  // Blocks until a client sends `shutdown` or Stop() is called.
  void WaitForShutdown();

  // Closes the listener, joins the accept and connection threads. Does
  // NOT shut the JobManager down — the owner does that (so tests can
  // inspect terminal job states after the server is gone). Idempotent.
  void Stop();

  // Resolved TCP port (after Start with tcp_port = 0).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  // One request line -> one response line. Sets *shutdown_requested when
  // the verb was `shutdown`.
  std::string HandleLine(const std::string& line, bool* shutdown_requested);
  // One full HTTP/1.0 response (headers + body) for `GET <path>`.
  std::string HandleHttp(const std::string& request_line);

  JobManager* manager_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::vector<int> conn_fds_;  // open connection fds, for Stop() to unblock
  std::atomic<bool> stopping_{false};

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;
};

}  // namespace tgpp::service

#endif  // TGPP_SERVICE_SERVER_H_
