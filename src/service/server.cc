#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "service/wire.h"

namespace tgpp::service {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// The introspection surface. One literal per line between the markers —
// tools/check_docs.sh extracts these paths and fails if any is missing
// from docs/OBSERVABILITY.md.
constexpr const char* kHttpEndpoints[] = {
    // HTTP-ENDPOINTS-BEGIN
    "/metrics",
    "/jobs",
    "/healthz",
    // HTTP-ENDPOINTS-END
};

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// JobRecordToJson with the profile nested under "profile" (the /jobs
// endpoint and the `jobs` verb with profiles:true).
std::string RecordWithProfile(const JobRecord& record,
                              const JobProfile& profile) {
  std::string out = JobRecordToJson(record);
  out.pop_back();  // the closing '}'
  out += ",\"profile\":";
  out += JobProfileToJson(profile);
  out += '}';
  return out;
}

}  // namespace

JobServer::JobServer(JobManager* manager, ServerOptions options)
    : manager_(manager), options_(std::move(options)) {}

JobServer::~JobServer() { Stop(); }

Status JobServer::Start() {
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead serve
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Errno("bind(" + options_.unix_path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket(AF_INET)");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Errno("bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
                   ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 16) != 0) return Errno("listen");
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void JobServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener closed under us
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void JobServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  bool first_line = true;
  while (!shutdown_requested) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // client hung up (or Stop closed us)
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (first_line && line.rfind("GET ", 0) == 0) {
      // HTTP introspection: one response per connection, then close —
      // the remaining request headers in `buffer` are irrelevant.
      SendAll(fd, HandleHttp(line));
      break;
    }
    first_line = false;
    std::string reply = HandleLine(line, &shutdown_requested);
    if (!SendAll(fd, reply + "\n")) break;
  }
  {
    // Deregister BEFORE close so Stop() never shuts down a recycled fd.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  ::close(fd);
  if (shutdown_requested) {
    {
      std::lock_guard<std::mutex> lock(shutdown_mu_);
      shutdown_ = true;
    }
    shutdown_cv_.notify_all();
  }
}

std::string JobServer::HandleLine(const std::string& line,
                                  bool* shutdown_requested) {
  auto request = JsonObject::Parse(line);
  if (!request.ok()) return ErrorLine(request.status());

  auto cmd = request->StringOr("cmd", "");
  if (!cmd.ok()) return ErrorLine(cmd.status());

  if (*cmd == "submit") {
    auto spec = ParseJobSpec(*request);
    if (!spec.ok()) return ErrorLine(spec.status());
    auto id = manager_->Submit(*spec);
    if (!id.ok()) return ErrorLine(id.status());
    return JsonWriter().Bool("ok", true).UInt("id", *id).Close();
  }

  if (*cmd == "update") {
    // Sugar for submit with query="update" (docs/DYNAMIC.md). With
    // "wait":true the reply is the terminal record (epoch, counts)
    // instead of just the id — the common closed-loop client shape.
    auto spec = ParseJobSpec(*request);
    if (!spec.ok()) return ErrorLine(spec.status());
    spec->query = "update";
    auto id = manager_->Submit(*spec);
    if (!id.ok()) return ErrorLine(id.status());
    auto wait = request->BoolOr("wait", false);
    if (!wait.ok()) return ErrorLine(wait.status());
    if (*wait) {
      auto timeout = request->IntOr("timeout_ms", -1);
      if (!timeout.ok()) return ErrorLine(timeout.status());
      auto record = manager_->Wait(*id, *timeout);
      if (!record.ok()) return ErrorLine(record.status());
      return JsonWriter()
          .Bool("ok", true)
          .Raw("job", JobRecordToJson(*record))
          .Close();
    }
    return JsonWriter().Bool("ok", true).UInt("id", *id).Close();
  }

  if (*cmd == "profile") {
    auto id = request->GetInt("id");
    if (!id.ok()) return ErrorLine(id.status());
    if (*id < 0) return ErrorLine(Status::InvalidArgument("bad id"));
    auto profile = manager_->GetProfile(static_cast<uint64_t>(*id));
    if (!profile.ok()) return ErrorLine(profile.status());
    return JsonWriter()
        .Bool("ok", true)
        .Raw("profile", JobProfileToJson(*profile))
        .Close();
  }

  if (*cmd == "status" || *cmd == "wait" || *cmd == "cancel") {
    auto id = request->GetInt("id");
    if (!id.ok()) return ErrorLine(id.status());
    if (*id < 0) return ErrorLine(Status::InvalidArgument("bad id"));
    uint64_t job_id = static_cast<uint64_t>(*id);

    if (*cmd == "cancel") {
      Status cancelled = manager_->Cancel(job_id);
      if (!cancelled.ok()) return ErrorLine(cancelled);
      auto record = manager_->GetJob(job_id);
      if (!record.ok()) return ErrorLine(record.status());
      return JsonWriter()
          .Bool("ok", true)
          .Raw("job", JobRecordToJson(*record))
          .Close();
    }

    Result<JobRecord> record = Status::OK();
    if (*cmd == "status") {
      record = manager_->GetJob(job_id);
    } else {
      auto timeout = request->IntOr("timeout_ms", -1);
      if (!timeout.ok()) return ErrorLine(timeout.status());
      record = manager_->Wait(job_id, *timeout);
    }
    if (!record.ok()) return ErrorLine(record.status());
    return JsonWriter()
        .Bool("ok", true)
        .Raw("job", JobRecordToJson(*record))
        .Close();
  }

  if (*cmd == "jobs") {
    auto with_profiles = request->BoolOr("profiles", false);
    if (!with_profiles.ok()) return ErrorLine(with_profiles.status());
    std::string array = "[";
    bool first = true;
    for (const JobRecord& record : manager_->ListJobs()) {
      if (!first) array += ',';
      first = false;
      if (*with_profiles) {
        auto profile = manager_->GetProfile(record.id);
        array += profile.ok() ? RecordWithProfile(record, *profile)
                              : JobRecordToJson(record);
      } else {
        array += JobRecordToJson(record);
      }
    }
    array += ']';
    return JsonWriter().Bool("ok", true).Raw("jobs", array).Close();
  }

  if (*cmd == "shutdown") {
    *shutdown_requested = true;
    return JsonWriter().Bool("ok", true).Close();
  }

  return ErrorLine(Status::InvalidArgument("unknown cmd: " + *cmd));
}

std::string JobServer::HandleHttp(const std::string& request_line) {
  // "GET <path> HTTP/1.x" — no query strings in this surface; anything
  // after '?' is ignored so `curl .../metrics?x=1` still resolves.
  std::string path = request_line.substr(4);
  size_t end = path.find(' ');
  if (end != std::string::npos) path.resize(end);
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path == "/metrics") {
    return HttpResponse(200, "OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        obs::RenderPrometheus(obs::Registry::Global()));
  }

  if (path == "/jobs") {
    std::string array = "[";
    bool first = true;
    for (const JobRecord& record : manager_->ListJobs()) {
      if (!first) array += ',';
      first = false;
      auto profile = manager_->GetProfile(record.id);
      array += profile.ok() ? RecordWithProfile(record, *profile)
                            : JobRecordToJson(record);
    }
    array += ']';
    return HttpResponse(200, "OK", "application/json",
                        JsonWriter().Raw("jobs", array).Close() + "\n");
  }

  if (path == "/healthz") {
    // Healthy = every machine's heartbeat is live (or heartbeats are not
    // running, in which case there is no verdict to report and the
    // service itself answering is the health signal).
    Fabric* fabric = manager_->cluster()->fabric();
    const int lost = fabric->FirstLostMachine();
    JsonWriter w;
    w.Bool("ok", lost < 0);
    w.Bool("heartbeats", fabric->HeartbeatsRunning());
    if (lost >= 0) w.Int("lost_machine", lost);
    const std::string body = w.Close() + "\n";
    return lost < 0
               ? HttpResponse(200, "OK", "application/json", body)
               : HttpResponse(503, "Service Unavailable", "application/json",
                              body);
  }

  std::string known;
  for (const char* endpoint : kHttpEndpoints) {
    if (!known.empty()) known += ' ';
    known += endpoint;
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "unknown path; endpoints: " + known + "\n");
}

void JobServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_; });
}

void JobServer::Stop() {
  bool was_stopping = stopping_.exchange(true, std::memory_order_acq_rel);
  if (!was_stopping && listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblock accept()
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    // Half-close every live connection so threads parked in recv() on
    // idle clients return instead of hanging the join below.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
}

}  // namespace tgpp::service
