#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "service/wire.h"

namespace tgpp::service {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

JobServer::JobServer(JobManager* manager, ServerOptions options)
    : manager_(manager), options_(std::move(options)) {}

JobServer::~JobServer() { Stop(); }

Status JobServer::Start() {
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead serve
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Errno("bind(" + options_.unix_path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket(AF_INET)");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Errno("bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
                   ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 16) != 0) return Errno("listen");
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void JobServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener closed under us
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void JobServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  while (!shutdown_requested) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // client hung up (or Stop closed us)
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (line.empty()) continue;
    std::string reply = HandleLine(line, &shutdown_requested);
    if (!SendAll(fd, reply + "\n")) break;
  }
  {
    // Deregister BEFORE close so Stop() never shuts down a recycled fd.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  ::close(fd);
  if (shutdown_requested) {
    {
      std::lock_guard<std::mutex> lock(shutdown_mu_);
      shutdown_ = true;
    }
    shutdown_cv_.notify_all();
  }
}

std::string JobServer::HandleLine(const std::string& line,
                                  bool* shutdown_requested) {
  auto request = JsonObject::Parse(line);
  if (!request.ok()) return ErrorLine(request.status());

  auto cmd = request->StringOr("cmd", "");
  if (!cmd.ok()) return ErrorLine(cmd.status());

  if (*cmd == "submit") {
    auto spec = ParseJobSpec(*request);
    if (!spec.ok()) return ErrorLine(spec.status());
    auto id = manager_->Submit(*spec);
    if (!id.ok()) return ErrorLine(id.status());
    return JsonWriter().Bool("ok", true).UInt("id", *id).Close();
  }

  if (*cmd == "status" || *cmd == "wait" || *cmd == "cancel") {
    auto id = request->GetInt("id");
    if (!id.ok()) return ErrorLine(id.status());
    if (*id < 0) return ErrorLine(Status::InvalidArgument("bad id"));
    uint64_t job_id = static_cast<uint64_t>(*id);

    if (*cmd == "cancel") {
      Status cancelled = manager_->Cancel(job_id);
      if (!cancelled.ok()) return ErrorLine(cancelled);
      auto record = manager_->GetJob(job_id);
      if (!record.ok()) return ErrorLine(record.status());
      return JsonWriter()
          .Bool("ok", true)
          .Raw("job", JobRecordToJson(*record))
          .Close();
    }

    Result<JobRecord> record = Status::OK();
    if (*cmd == "status") {
      record = manager_->GetJob(job_id);
    } else {
      auto timeout = request->IntOr("timeout_ms", -1);
      if (!timeout.ok()) return ErrorLine(timeout.status());
      record = manager_->Wait(job_id, *timeout);
    }
    if (!record.ok()) return ErrorLine(record.status());
    return JsonWriter()
        .Bool("ok", true)
        .Raw("job", JobRecordToJson(*record))
        .Close();
  }

  if (*cmd == "jobs") {
    std::string array = "[";
    bool first = true;
    for (const JobRecord& record : manager_->ListJobs()) {
      if (!first) array += ',';
      first = false;
      array += JobRecordToJson(record);
    }
    array += ']';
    return JsonWriter().Bool("ok", true).Raw("jobs", array).Close();
  }

  if (*cmd == "shutdown") {
    *shutdown_requested = true;
    return JsonWriter().Bool("ok", true).Close();
  }

  return ErrorLine(Status::InvalidArgument("unknown cmd: " + *cmd));
}

void JobServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_; });
}

void JobServer::Stop() {
  bool was_stopping = stopping_.exchange(true, std::memory_order_acq_rel);
  if (!was_stopping && listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblock accept()
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    // Half-close every live connection so threads parked in recv() on
    // idle clients return instead of hanging the join below.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
}

}  // namespace tgpp::service
