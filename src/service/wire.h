// Wire codec for the job-service line protocol (docs/SERVICE.md).
//
// Every request and response is ONE JSON object per line. Requests are
// flat (string/number/bool values only); responses may carry one level of
// nesting ("jobs": [...]), which the parser exposes as raw slices so the
// client can re-parse each element. Hand-rolled because the build has no
// JSON dependency — the grammar here is deliberately the subset the
// protocol emits, not general JSON (no unicode escapes, no nested access
// beyond raw slices).

#ifndef TGPP_SERVICE_WIRE_H_
#define TGPP_SERVICE_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/job.h"

namespace tgpp::service {

// A parsed flat JSON object. Object/array values are kept as raw text,
// re-parseable with another Parse call per element via GetArray.
class JsonObject {
 public:
  static Result<JsonObject> Parse(const std::string& line);

  bool Has(const std::string& key) const;
  // Typed getters: error on missing key or wrong type. The *Or forms
  // return `fallback` when the key is absent (but still error on a
  // present-but-mistyped value, which is a malformed request).
  Result<std::string> GetString(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;
  Result<std::string> StringOr(const std::string& key,
                               std::string fallback) const;
  Result<int64_t> IntOr(const std::string& key, int64_t fallback) const;
  Result<bool> BoolOr(const std::string& key, bool fallback) const;
  Result<double> DoubleOr(const std::string& key, double fallback) const;
  // Raw text of a nested object/array value, re-parseable with Parse.
  Result<std::string> GetRaw(const std::string& key) const;
  // Raw element texts of an array value (each "{...}" etc.).
  Result<std::vector<std::string>> GetArray(const std::string& key) const;

 private:
  enum class Kind { kString, kNumber, kBool, kNull, kRaw };
  struct Value {
    Kind kind;
    std::string text;  // decoded string / number text / raw slice
    bool boolean = false;
  };
  std::map<std::string, Value> values_;
};

std::string EscapeJson(const std::string& s);

// Incremental builder for one flat JSON object line.
class JsonWriter {
 public:
  JsonWriter& Str(const char* key, const std::string& value);
  JsonWriter& Int(const char* key, int64_t value);
  JsonWriter& UInt(const char* key, uint64_t value);
  JsonWriter& Double(const char* key, double value);
  JsonWriter& Bool(const char* key, bool value);
  // Pre-serialized JSON (an object or array) as the value.
  JsonWriter& Raw(const char* key, const std::string& json);
  std::string Close();

 private:
  void Sep(const char* key);
  std::string out_ = "{";
  bool first_ = true;
};

// {"cmd":"submit", ...} -> JobSpec, validating field types. Unknown keys
// are ignored (forward compatibility).
Result<JobSpec> ParseJobSpec(const JsonObject& request);

// Serializes a record as a flat object: id, query, state, crc32 (hex),
// aggregate, supersteps, reserved_bytes, queue_wait_s, run_s, and — when
// terminal-with-error — error + code.
std::string JobRecordToJson(const JobRecord& record);

// Serializes a profile: job, totals (supersteps, push/pull split, phase
// CPU seconds, bytes, recovery tax, checkpoints), and a "rows" array of
// per-superstep objects (obs::SuperstepRow::ToJson). Served by the
// `profile` verb, `jobs` with profiles:true, and /jobs.
std::string JobProfileToJson(const JobProfile& profile);

// {"ok":false,"error":...,"code":"Timeout"}.
std::string ErrorLine(const Status& status);

}  // namespace tgpp::service

#endif  // TGPP_SERVICE_WIRE_H_
