// JobManager: admission control, scheduling, and cancellation for many
// queries over ONE shared Cluster (docs/SERVICE.md).
//
// Design:
//  - Submissions enter a FIFO+priority queue (higher priority first, FIFO
//    within a priority, strict head-of-line: the head must be admitted
//    before anything behind it is considered, so backpressure is
//    predictable and starvation-free).
//  - Admission reserves the job's estimated memory (MemoryModel Eq 4) out
//    of a ReservationLedger over the per-machine window budget; a failed
//    reservation leaves the job queued until a running job releases.
//  - Each admitted job runs on its own runner thread with a fully
//    isolated engine: disjoint fabric tag range, private superstep
//    barrier, per-job scratch file prefix, and a CancelToken checked at
//    superstep boundaries. Jobs still SHARE the machines' buffer pools —
//    that sharing (hot edge pages served to every query) is the point of
//    the service.
//  - Cancel and deadline surface as Status::Cancelled / Status::Timeout;
//    every terminal transition releases the reservation and re-pumps the
//    queue.
//
// Concurrency-scoped engine restrictions: service jobs run with IN-ENGINE
// recovery disabled (max_recovery_attempts=0 — engine recovery calls
// Fabric::Reset(), which would drain OTHER jobs' in-flight messages).
// Fault tolerance is instead JOB-LEVEL: a retryable failure (timeout,
// I/O error, machine lost) re-runs the whole job after an exponential
// backoff with deterministic jitter, draining the job's tags and reviving
// dead machines first, and resuming from the job's latest checkpoint when
// checkpoint_every > 0 (docs/FAULTS.md). Fault-injector superstep gating
// is process-global, so superstep-scoped fault specs are only meaningful
// with one job in flight.

#ifndef TGPP_SERVICE_JOB_MANAGER_H_
#define TGPP_SERVICE_JOB_MANAGER_H_

#include <barrier>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/cancel_token.h"
#include "core/memory_model.h"
#include "dyn/dynamic_graph.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"
#include "service/job.h"

namespace tgpp::service {

struct JobServiceOptions {
  // Upper bound on concurrently running jobs; also sizes the fabric tag
  // slot table.
  int max_running = 2;
  // Ledger capacity per machine. 0 = machine(0)->WindowMemoryBytes().
  uint64_t ledger_capacity_override = 0;
  // Per-job reservation. 0 = the memory model's Eq 4 estimate for the
  // query at the current q. Tests pin both overrides to make admission
  // order deterministic.
  uint64_t reservation_override = 0;
  // Engine receive deadline for service jobs (a lost message fails the
  // job instead of wedging a runner thread forever).
  int64_t recv_timeout_ms = 60000;

  // Job-level retry on retryable failures (Status::IsRetryable): a job
  // that fails with timeout / I/O error / machine lost is re-run up to
  // this many additional times, resuming from its latest checkpoint.
  // 0 = fail immediately (historical behavior).
  int max_retries = 0;
  // Base backoff before attempt N (N = 1-based retry index):
  // base * 2^(N-1) + jitter, jitter = Mix64(seed ^ job_id ^ N) % base.
  // The jitter is deterministic given the seed, so tests can bound
  // retry timing exactly.
  int64_t retry_backoff_ms = 50;
  uint64_t retry_jitter_seed = 0x7470705f72657472ull;  // "tgpp_retr"
  // Checkpoint cadence for service jobs (0 = none). Checkpoints enable
  // resume-from-checkpoint on retry; they do NOT enable in-engine
  // recovery (see header comment).
  int checkpoint_every = 0;
  // Failure-detection heartbeats for service jobs (engine semantics:
  // timeout 0 = off unless an armed machine.kill spec auto-enables).
  int64_t heartbeat_interval_ms = 0;
  int64_t heartbeat_timeout_ms = 0;
};

class JobManager {
 public:
  // `cluster` and `pg` must outlive the manager. The graph must already
  // be partitioned with a q sufficient for the submitted queries (see
  // RequiredQForService); the manager never repartitions — that would
  // drop the shared buffer pools under running jobs (and, with a
  // DynamicGraph attached, silently rebuild pages without its applied
  // mutations). `dynamic` (optional, must outlive the manager, must wrap
  // the same `pg`) enables "update" jobs; without it they are rejected
  // at Submit. Update jobs reserve the ENTIRE ledger, so admission runs
  // them exclusively — that is what makes query reads snapshot-consistent
  // (one epoch per query) without a read lock on the graph.
  JobManager(Cluster* cluster, const PartitionedGraph* pg,
             JobServiceOptions options = {},
             dyn::DynamicGraph* dynamic = nullptr);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Enqueues a job; returns its id. Fails only on malformed specs
  // (unknown query name) or after Shutdown.
  Result<uint64_t> Submit(const JobSpec& spec);

  // Requests cancellation. Queued jobs transition to cancelled
  // immediately; running jobs observe the token at their next superstep
  // boundary. NotFound for unknown ids; ok (no-op) if already terminal.
  Status Cancel(uint64_t id);

  Result<JobRecord> GetJob(uint64_t id) const;
  std::vector<JobRecord> ListJobs() const;

  // Execution profile accumulated from the job's superstep observer rows
  // (all attempts). Available from the first superstep on — callers may
  // poll it while the job runs. NotFound for unknown ids.
  Result<JobProfile> GetProfile(uint64_t id) const;

  // The shared cluster (for introspection endpoints: /healthz reads the
  // fabric's heartbeat liveness through this).
  Cluster* cluster() const { return cluster_; }

  // Blocks until the job is terminal. timeout_ms < 0 waits forever;
  // expiry returns Status::Timeout (the job keeps running).
  Result<JobRecord> Wait(uint64_t id, int64_t timeout_ms = -1);

  // Cancels every queued and running job, waits for runners to exit.
  // Idempotent; Submit fails afterwards.
  void Shutdown();

  // The admission estimate used for `spec` (before overrides).
  uint64_t EstimateReservation(const JobSpec& spec) const;

  const ReservationLedger& ledger() const { return *ledger_; }

 private:
  struct Job {
    uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
    std::string status_code;
    CancelToken cancel;
    uint64_t reserved_bytes = 0;
    int tag_slot = -1;
    std::unique_ptr<std::barrier<>> barrier;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point admit_time;
    uint32_t result_crc = 0;
    uint64_t aggregate = 0;
    int supersteps = 0;
    double queue_wait_seconds = 0;
    double run_seconds = 0;
    // Times the job has been (re-)run: 1 on a clean first pass, up to
    // 1 + max_retries. retries_exhausted marks a terminal failure that
    // was retryable but ran out of attempts (exit code 6 in `tgpp jobs`).
    int attempts = 0;
    bool retries_exhausted = false;
    // Update jobs: parsed batch + outcome (mirrors JobRecord).
    std::vector<dyn::EdgeMutation> parsed_mutations;
    uint64_t epoch = 0;
    uint64_t edges_inserted = 0;
    uint64_t edges_deleted = 0;
    // Accumulated under mu_ by the runner's superstep observer; snapshot
    // with GetProfile. Lives in the Job (not the engine) so it survives
    // retries and is queryable after the runner exits.
    JobProfile profile;
    std::thread runner;
  };

  // Admits queued jobs while slots + budget allow (strict head-of-line).
  // Caller holds mu_.
  void PumpLocked();
  void FinishLocked(Job* job, JobState state, const Status& status);
  void RunJob(Job* job);
  // Runner body for query == "update": ApplyBatch with job-level retry
  // (revive + WAL recovery + idempotent re-apply on machine loss).
  void RunUpdateJob(Job* job);
  JobRecord SnapshotLocked(const Job& job) const;
  Job* FindLocked(uint64_t id) const;

  // Drains the job's fabric tag range on every machine so a reused tag
  // slot (or a retry of the same job) never sees a predecessor's stale
  // messages.
  void DrainTags(uint32_t tag_base);

  // Sleeps the backoff before retry `attempt` (1-based) of `job_id`,
  // waking early on shutdown or job cancellation. Returns false if the
  // wait was interrupted (the retry should be abandoned).
  bool WaitBackoff(Job* job, int attempt);

  Cluster* cluster_;
  const PartitionedGraph* pg_;
  JobServiceOptions options_;
  dyn::DynamicGraph* dynamic_;  // null = update jobs rejected
  std::unique_ptr<ReservationLedger> ledger_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signalled on any state change
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<uint64_t> queue_;  // kept sorted: priority desc, id asc
  std::vector<bool> slot_taken_;
  uint64_t next_id_ = 1;
  int running_ = 0;  // admitted or running (holds a slot)
  bool shutdown_ = false;

  // service.* instruments (docs/METRICS.md), cluster-scoped.
  obs::Counter jobs_submitted_, jobs_admitted_, jobs_done_, jobs_failed_,
      jobs_cancelled_, job_retries_;
  obs::Gauge jobs_queued_, jobs_running_, reserved_bytes_;
  obs::LatencyHistogram queue_wait_ns_, run_latency_ns_;
  std::vector<obs::Registration> registrations_;
};

// q needed so `max_running` concurrent k=1 queries (pr/sssp/wcc — the
// widest attribute is PageRank's 16 bytes) each fit in a 1/max_running
// share of the per-machine window budget. `tgpp serve` prepartitions
// with this before accepting jobs; k>1 queries additionally need the
// full-budget q and fail admission-free with InvalidArgument from the
// engine when q is too coarse.
Result<int> RequiredQForService(Cluster& cluster, uint64_t num_vertices,
                                int max_running);

// Fabric tag bases for job slots: the engine owns tags 0-5 and the
// baselines 8-13, so service slots start at 16, stride 6
// (updates/control/adj-request/adj-response/frontier/barrier per job).
inline constexpr uint32_t kServiceTagBase = 16;
inline constexpr uint32_t kTagsPerJob = 6;

}  // namespace tgpp::service

#endif  // TGPP_SERVICE_JOB_MANAGER_H_
