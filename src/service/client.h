// ServiceClient: the `tgpp submit` / `tgpp jobs` side of the line
// protocol (docs/SERVICE.md). One connection, synchronous request/reply.

#ifndef TGPP_SERVICE_CLIENT_H_
#define TGPP_SERVICE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "service/wire.h"

namespace tgpp::service {

class ServiceClient {
 public:
  static Result<ServiceClient> ConnectUnix(const std::string& path);
  static Result<ServiceClient> ConnectTcp(const std::string& host, int port);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  // Sends one request line (no trailing newline needed) and returns the
  // parsed response object. A response with "ok":false is surfaced as the
  // error Status it encodes (code + message round-trip the wire).
  Result<JsonObject> Call(const std::string& request_line);

  // Like Call but returns the raw response line (still failing on
  // transport errors); used where the CLI just relays the payload.
  Result<std::string> CallRaw(const std::string& request_line);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed line
};

// Reconstructs the Status a response line encodes: OK for "ok":true,
// otherwise the code/error fields mapped back through StatusCode names.
Status StatusFromResponse(const JsonObject& response);

}  // namespace tgpp::service

#endif  // TGPP_SERVICE_CLIENT_H_
