// Job model for the multi-query service (docs/SERVICE.md).
//
// A job is one query submitted against the service's shared cluster and
// partitioned graph. Its lifecycle is
//
//   queued --admission--> admitted --runner picks up--> running
//   running --> done | failed | cancelled
//   queued  --> cancelled (cancel before admission) | failed (deadline)
//
// Admission (JobManager) reserves the job's estimated memory out of the
// ReservationLedger; every terminal transition releases it.

#ifndef TGPP_SERVICE_JOB_H_
#define TGPP_SERVICE_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "obs/export.h"

namespace tgpp::service {

enum class JobState {
  kQueued,
  kAdmitted,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

inline const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kAdmitted:
      return "admitted";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

inline bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

// What a client submits. `query` is one of pr|bfs|sssp|sssp-delta|wcc|
// wcc-sampled|kcore|lp|mis|tc|lcc|clique4 (the same names
// `tgpp run --query` accepts; catalog in docs/ALGORITHMS.md), or
// "update" — a graph mutation batch (docs/DYNAMIC.md) that runs
// EXCLUSIVELY: it reserves the whole admission ledger, so it shares the
// cluster with no query and every query sees a single mutation epoch.
struct JobSpec {
  std::string query = "pr";
  int iterations = 10;        // pr iterations / lp rounds
  VertexId source = 0;        // bfs/sssp/sssp-delta, ORIGINAL id space
  int priority = 0;           // higher runs first; FIFO within a priority
  int64_t deadline_ms = 0;    // relative to submit; 0 = no deadline
  bool deterministic = true;  // bit-reproducible results (the default so
                              // concurrent == serial is checkable)
  // query == "update" only: edge mutations in "[+|-]src:dst" text form
  // (ORIGINAL ids; dyn::ParseEdgeMutation), validated at Submit.
  std::vector<std::string> mutations;
};

// Snapshot of one job, returned by status/jobs queries. Plain data — safe
// to copy out of the manager's lock.
struct JobRecord {
  uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string error;             // terminal Status message when failed
  std::string status_code;       // terminal StatusCodeToString name
  uint64_t reserved_bytes = 0;   // admitted memory (0 once released)
  uint32_t result_crc = 0;       // digest of final attributes, old-id order
  uint64_t aggregate = 0;        // QueryStats::aggregate_sum (tc/clique4)
  int supersteps = 0;
  double queue_wait_seconds = 0; // submit -> admitted
  double run_seconds = 0;        // admitted -> terminal
  int attempts = 0;              // runs of the job (1 + retries taken)
  bool retries_exhausted = false;  // failed retryable after max_retries
  // Update jobs only (docs/DYNAMIC.md): epoch the batch committed as and
  // the final attempt's applied counts (after a retried apply, earlier
  // partial progress shows up as idempotent skips, not here).
  uint64_t epoch = 0;
  uint64_t edges_inserted = 0;
  uint64_t edges_deleted = 0;
};

// Profile rows are capped so a long-running iterative job can't grow the
// manager's memory without bound; the totals below keep accumulating past
// the cap and `rows_dropped` records the truncation.
inline constexpr int kMaxProfileRows = 512;

// Per-job execution profile, accumulated by the JobManager from the
// engine's superstep observer rows across every attempt of the job
// (retries included — the rows honestly show replayed work). Retrieved by
// `tgpp profile <id>` and the /jobs endpoint; plain data, copied out of
// the manager's lock like JobRecord.
struct JobProfile {
  uint64_t job_id = 0;
  std::vector<obs::SuperstepRow> rows;  // first kMaxProfileRows rows
  int rows_dropped = 0;                 // rows past the cap (totals still count)
  // Totals across all attempts.
  int supersteps = 0;                   // observer rows seen
  int push_supersteps = 0;
  int pull_supersteps = 0;
  uint64_t updates_generated = 0;
  uint64_t updates_sent = 0;
  uint64_t updates_spilled = 0;
  uint64_t disk_bytes = 0;
  uint64_t net_bytes = 0;
  double scatter_cpu_seconds = 0;
  double gather_cpu_seconds = 0;
  double apply_cpu_seconds = 0;
  double buffer_hit_rate = 0;           // last observed (cumulative rate)
  // Recovery tax (QueryStats recovery_* fields, summed over attempts).
  int recoveries = 0;
  double recovery_detect_seconds = 0;
  double recovery_restore_seconds = 0;
  double recovery_replay_seconds = 0;
  int checkpoints = 0;
  bool resumed = false;                 // any attempt resumed a checkpoint
  int lost_machine = -1;                // last machine a failure took down
};

}  // namespace tgpp::service

#endif  // TGPP_SERVICE_JOB_H_
