// Job model for the multi-query service (docs/SERVICE.md).
//
// A job is one query submitted against the service's shared cluster and
// partitioned graph. Its lifecycle is
//
//   queued --admission--> admitted --runner picks up--> running
//   running --> done | failed | cancelled
//   queued  --> cancelled (cancel before admission) | failed (deadline)
//
// Admission (JobManager) reserves the job's estimated memory out of the
// ReservationLedger; every terminal transition releases it.

#ifndef TGPP_SERVICE_JOB_H_
#define TGPP_SERVICE_JOB_H_

#include <cstdint>
#include <string>

#include "graph/types.h"

namespace tgpp::service {

enum class JobState {
  kQueued,
  kAdmitted,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

inline const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kAdmitted:
      return "admitted";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

inline bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

// What a client submits. `query` is one of pr|bfs|sssp|sssp-delta|wcc|
// wcc-sampled|kcore|lp|mis|tc|lcc|clique4 (the same names
// `tgpp run --query` accepts; catalog in docs/ALGORITHMS.md).
struct JobSpec {
  std::string query = "pr";
  int iterations = 10;        // pr iterations / lp rounds
  VertexId source = 0;        // bfs/sssp/sssp-delta, ORIGINAL id space
  int priority = 0;           // higher runs first; FIFO within a priority
  int64_t deadline_ms = 0;    // relative to submit; 0 = no deadline
  bool deterministic = true;  // bit-reproducible results (the default so
                              // concurrent == serial is checkable)
};

// Snapshot of one job, returned by status/jobs queries. Plain data — safe
// to copy out of the manager's lock.
struct JobRecord {
  uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string error;             // terminal Status message when failed
  std::string status_code;       // terminal StatusCodeToString name
  uint64_t reserved_bytes = 0;   // admitted memory (0 once released)
  uint32_t result_crc = 0;       // digest of final attributes, old-id order
  uint64_t aggregate = 0;        // QueryStats::aggregate_sum (tc/clique4)
  int supersteps = 0;
  double queue_wait_seconds = 0; // submit -> admitted
  double run_seconds = 0;        // admitted -> terminal
  int attempts = 0;              // runs of the job (1 + retries taken)
  bool retries_exhausted = false;  // failed retryable after max_retries
};

}  // namespace tgpp::service

#endif  // TGPP_SERVICE_JOB_H_
