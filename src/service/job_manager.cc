#include "service/job_manager.h"

#include <algorithm>
#include <utility>

#include "algos/bfs.h"
#include "algos/clique4.h"
#include "algos/kcore.h"
#include "algos/label_propagation.h"
#include "algos/lcc.h"
#include "algos/mis.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/triangle_counting.h"
#include "algos/wcc.h"
#include "common/logging.h"
#include "core/engine.h"
#include "obs/events.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/trace.h"

namespace tgpp::service {
namespace {

// (k, per-vertex attribute bytes) per supported query, for the admission
// estimate. Unknown names are rejected at Submit.
struct QueryShape {
  int k;
  uint64_t attr_bytes;
};

Result<QueryShape> ShapeOf(const std::string& query) {
  if (query == "pr") return QueryShape{1, sizeof(PageRankAttr)};
  if (query == "bfs") return QueryShape{1, sizeof(BfsAttr)};
  if (query == "sssp") return QueryShape{1, sizeof(SsspAttr)};
  if (query == "sssp-delta") return QueryShape{1, sizeof(SsspDeltaAttr)};
  if (query == "wcc") return QueryShape{1, sizeof(WccAttr)};
  if (query == "wcc-sampled") return QueryShape{1, sizeof(WccSampledAttr)};
  if (query == "kcore") return QueryShape{1, sizeof(KcoreAttr)};
  if (query == "lp") return QueryShape{1, sizeof(LpAttr)};
  if (query == "mis") return QueryShape{1, sizeof(MisAttr)};
  if (query == "tc") return QueryShape{2, sizeof(TcAttr)};
  if (query == "lcc") return QueryShape{2, sizeof(LccAttr)};
  if (query == "clique4") return QueryShape{3, sizeof(Clique4Attr)};
  return Status::InvalidArgument("unknown query: " + query);
}

struct Outcome {
  QueryStats stats;
  uint32_t crc = 0;
};

// Upper bound on the epoch index scanned when removing a finished job's
// checkpoint files (no service query runs longer than this).
constexpr int kMaxEpochScan = 4096;

// Runs one query over the shared cluster with the given (job-isolated)
// engine options and digests the final attributes in ORIGINAL vertex-id
// order, so a serial `tgpp run` of the same query produces the same CRC.
template <typename V, typename U>
Status RunTyped(Cluster* cluster, const PartitionedGraph* pg,
                KWalkApp<V, U>& app, const EngineOptions& options,
                Outcome* out) {
  NwsmEngine<V, U> engine(cluster, pg, options);
  TGPP_RETURN_IF_ERROR(engine.Initialize(app));
  TGPP_ASSIGN_OR_RETURN(out->stats, engine.Run(app));
  std::vector<V> by_new;
  TGPP_RETURN_IF_ERROR(engine.ReadAttributes(&by_new));
  std::vector<V> by_old(by_new.size());
  for (VertexId new_id = 0; new_id < by_new.size(); ++new_id) {
    by_old[pg->new_to_old[new_id]] = by_new[new_id];
  }
  out->crc = Crc32(by_old.data(), by_old.size() * sizeof(V));
  return Status::OK();
}

Status RunForSpec(Cluster* cluster, const PartitionedGraph* pg,
                  const JobSpec& spec, const EngineOptions& options,
                  Outcome* out) {
  if (spec.query == "pr") {
    auto app = MakePageRankApp(pg, spec.iterations);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "sssp") {
    if (spec.source >= pg->num_vertices) {
      return Status::InvalidArgument("sssp source out of range");
    }
    auto app = MakeSsspApp(pg, spec.source);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "bfs") {
    if (spec.source >= pg->num_vertices) {
      return Status::InvalidArgument("bfs source out of range");
    }
    auto app = MakeBfsApp(pg, spec.source);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "sssp-delta") {
    if (spec.source >= pg->num_vertices) {
      return Status::InvalidArgument("sssp-delta source out of range");
    }
    auto app = MakeSsspDeltaApp(pg, spec.source);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "wcc") {
    auto app = MakeWccApp(pg);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "wcc-sampled") {
    auto app = MakeWccSampledApp(pg);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "kcore") {
    auto app = MakeKcoreApp(pg);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "lp") {
    // Reuses the `iterations` field as the round count.
    auto app = MakeLabelPropagationApp(pg, std::max(1, spec.iterations));
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "mis") {
    auto app = MakeMisApp(pg);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "tc") {
    auto app = MakeTriangleCountingApp();
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "lcc") {
    auto app = MakeLccApp(pg);
    return RunTyped(cluster, pg, app, options, out);
  }
  if (spec.query == "clique4") {
    auto app = MakeFourCliqueApp();
    return RunTyped(cluster, pg, app, options, out);
  }
  return Status::InvalidArgument("unknown query: " + spec.query);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Result<int> RequiredQForService(Cluster& cluster, uint64_t num_vertices,
                                int max_running) {
  MemoryModelInput in;
  in.k = 1;
  in.p = cluster.num_machines();
  in.num_vertices = num_vertices;
  in.vertex_attr_bytes = sizeof(PageRankAttr);  // widest k=1 attribute
  in.page_size = kPageSize;
  in.total_budget_bytes =
      cluster.machine(0)->WindowMemoryBytes() /
      static_cast<uint64_t>(std::max(1, max_running));
  return ComputeQMin(in);
}

JobManager::JobManager(Cluster* cluster, const PartitionedGraph* pg,
                       JobServiceOptions options, dyn::DynamicGraph* dynamic)
    : cluster_(cluster), pg_(pg), options_(options), dynamic_(dynamic) {
  TGPP_CHECK(dynamic_ == nullptr || dynamic_->pg() == pg_)
      << "DynamicGraph must wrap the manager's partitioned graph";
  TGPP_CHECK(options_.max_running >= 1);
  const uint64_t capacity =
      options_.ledger_capacity_override != 0
          ? options_.ledger_capacity_override
          : cluster_->machine(0)->WindowMemoryBytes();
  ledger_ = std::make_unique<ReservationLedger>(capacity);
  slot_taken_.assign(static_cast<size_t>(options_.max_running), false);

  obs::Registry& reg = obs::Registry::Global();
  obs::TryRegister(&reg, &registrations_, "service.jobs_submitted", -1,
                   &jobs_submitted_);
  obs::TryRegister(&reg, &registrations_, "service.jobs_admitted", -1,
                   &jobs_admitted_);
  obs::TryRegister(&reg, &registrations_, "service.jobs_done", -1,
                   &jobs_done_);
  obs::TryRegister(&reg, &registrations_, "service.jobs_failed", -1,
                   &jobs_failed_);
  obs::TryRegister(&reg, &registrations_, "service.jobs_cancelled", -1,
                   &jobs_cancelled_);
  obs::TryRegister(&reg, &registrations_, "service.job_retries", -1,
                   &job_retries_);
  obs::TryRegister(&reg, &registrations_, "service.jobs_queued", -1,
                   &jobs_queued_);
  obs::TryRegister(&reg, &registrations_, "service.jobs_running", -1,
                   &jobs_running_);
  obs::TryRegister(&reg, &registrations_, "service.reserved_bytes", -1,
                   &reserved_bytes_);
  obs::TryRegister(&reg, &registrations_, "service.queue_wait_ns", -1,
                   &queue_wait_ns_);
  obs::TryRegister(&reg, &registrations_, "service.run_latency_ns", -1,
                   &run_latency_ns_);
}

JobManager::~JobManager() { Shutdown(); }

uint64_t JobManager::EstimateReservation(const JobSpec& spec) const {
  // Update jobs take the whole ledger: exclusivity is their correctness
  // property (snapshot-consistent reads), not a sizing estimate.
  if (spec.query == "update") return ledger_->capacity();
  auto shape = ShapeOf(spec.query);
  if (!shape.ok()) return 0;
  MemoryModelInput in;
  in.k = shape->k;
  in.p = pg_->p;
  in.num_vertices = pg_->num_vertices;
  in.vertex_attr_bytes = shape->attr_bytes;
  in.page_size = kPageSize;
  in.total_budget_bytes = ledger_->capacity();
  return MinimumRequiredBytes(in, pg_->q);
}

Result<uint64_t> JobManager::Submit(const JobSpec& spec) {
  std::vector<dyn::EdgeMutation> parsed;
  if (spec.query == "update") {
    if (dynamic_ == nullptr) {
      return Status::InvalidArgument(
          "service has no dynamic-graph subsystem attached; "
          "update jobs are not accepted");
    }
    parsed.reserve(spec.mutations.size());
    for (const std::string& text : spec.mutations) {
      TGPP_ASSIGN_OR_RETURN(dyn::EdgeMutation m,
                            dyn::ParseEdgeMutation(text));
      if (m.src >= pg_->num_vertices || m.dst >= pg_->num_vertices) {
        return Status::InvalidArgument("mutation endpoint out of range: " +
                                       text);
      }
      parsed.push_back(m);
    }
  } else {
    TGPP_RETURN_IF_ERROR(ShapeOf(spec.query).status());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return Status::Aborted("job service is shut down");

  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->spec = spec;
  job->parsed_mutations = std::move(parsed);
  job->submit_time = std::chrono::steady_clock::now();
  if (spec.deadline_ms > 0) {
    job->cancel.SetTimeout(std::chrono::milliseconds(spec.deadline_ms));
  }
  const uint64_t id = job->id;

  // Insert keeping the queue ordered by (priority desc, id asc): stable
  // FIFO within a priority band.
  auto pos = std::find_if(queue_.begin(), queue_.end(), [&](uint64_t other) {
    return jobs_.at(other)->spec.priority < spec.priority;
  });
  queue_.insert(pos, id);
  jobs_.emplace(id, std::move(job));

  jobs_submitted_.Add(1);
  jobs_queued_.Add(1);
  trace::Instant("service.submit", "service", "job", id);
  obs::EmitEvent(obs::EventType::kJobSubmit, id, -1, -1, nullptr, "queued",
                 static_cast<uint64_t>(queue_.size()));
  PumpLocked();
  cv_.notify_all();
  return id;
}

JobManager::Job* JobManager::FindLocked(uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

void JobManager::PumpLocked() {
  while (!shutdown_ && !queue_.empty() && running_ < options_.max_running) {
    Job* job = FindLocked(queue_.front());
    TGPP_CHECK(job != nullptr && job->state == JobState::kQueued);

    // A queued job whose token already fired never runs; its terminal
    // state frees the head of the line.
    Status token = job->cancel.Check();
    if (!token.ok()) {
      queue_.pop_front();
      jobs_queued_.Add(-1);
      FinishLocked(job,
                   token.IsCancelled() ? JobState::kCancelled
                                       : JobState::kFailed,
                   token);
      continue;
    }

    // The override never shrinks an update job's reservation: exclusivity
    // is load-bearing (snapshot consistency), not a tunable.
    const uint64_t reservation =
        job->spec.query == "update"
            ? ledger_->capacity()
            : (options_.reservation_override != 0
                   ? options_.reservation_override
                   : EstimateReservation(job->spec));
    Status reserved =
        ledger_->Reserve(reservation, "job" + std::to_string(job->id));
    if (!reserved.ok()) {
      // Backpressure: strict head-of-line — nothing behind the head is
      // considered until budget frees (predictable admission order).
      break;
    }

    int slot = -1;
    for (size_t s = 0; s < slot_taken_.size(); ++s) {
      if (!slot_taken_[s]) {
        slot = static_cast<int>(s);
        break;
      }
    }
    TGPP_CHECK(slot >= 0);  // running_ < max_running guarantees a slot

    queue_.pop_front();
    slot_taken_[slot] = true;
    ++running_;
    job->state = JobState::kAdmitted;
    job->reserved_bytes = reservation;
    job->tag_slot = slot;
    job->barrier =
        std::make_unique<std::barrier<>>(cluster_->num_machines());
    job->admit_time = std::chrono::steady_clock::now();
    job->queue_wait_seconds = std::chrono::duration<double>(
                                  job->admit_time - job->submit_time)
                                  .count();

    jobs_admitted_.Add(1);
    jobs_queued_.Add(-1);
    jobs_running_.Add(1);
    reserved_bytes_.Add(static_cast<int64_t>(reservation));
    queue_wait_ns_.Record(
        static_cast<uint64_t>(job->queue_wait_seconds * 1e9));
    trace::Instant("service.admit", "service", "job", job->id, "bytes",
                   reservation);
    obs::EmitEvent(obs::EventType::kJobAdmit, job->id, -1, -1, nullptr,
                   "bytes", reservation, "wait_us",
                   static_cast<uint64_t>(job->queue_wait_seconds * 1e6));

    job->runner = std::thread([this, job] { RunJob(job); });
  }
}

void JobManager::RunJob(Job* job) {
  if (trace::Enabled()) {
    trace::SetCurrentThreadName("job" + std::to_string(job->id) + "." +
                                job->spec.query);
  }
  if (job->spec.query == "update") {
    RunUpdateJob(job);
    return;
  }
  EngineOptions options;
  options.deterministic = job->spec.deterministic;
  options.recv_timeout_ms = options_.recv_timeout_ms;
  // In-engine recovery stays OFF: it resets the SHARED fabric, which
  // would drain other jobs' in-flight messages. Checkpoints are still
  // written so the job-level retry below can resume instead of
  // cold-restarting (docs/FAULTS.md).
  options.checkpoint_every = options_.checkpoint_every;
  options.max_recovery_attempts = 0;
  options.heartbeat_interval_ms = options_.heartbeat_interval_ms;
  options.heartbeat_timeout_ms = options_.heartbeat_timeout_ms;
  options.fabric_tag_base =
      kServiceTagBase + static_cast<uint32_t>(job->tag_slot) * kTagsPerJob;
  options.scratch_prefix = "job" + std::to_string(job->id) + "_";
  options.job_barrier = job->barrier.get();
  options.cancel = &job->cancel;
  options.job_id = job->id;
  // Profile accumulation: the engine calls this on the runner thread at
  // every superstep barrier; the manager owns the rows so they survive
  // retries and outlive the engine.
  options.superstep_observer = [this, job](const obs::SuperstepRow& row) {
    std::lock_guard<std::mutex> lock(mu_);
    JobProfile& p = job->profile;
    if (static_cast<int>(p.rows.size()) < kMaxProfileRows) {
      p.rows.push_back(row);
    } else {
      ++p.rows_dropped;
    }
    ++p.supersteps;
    if (row.direction[2] == 'l') {  // "pull" vs "push"
      ++p.pull_supersteps;
    } else {
      ++p.push_supersteps;
    }
    p.updates_generated += row.updates_generated;
    p.updates_sent += row.updates_sent;
    p.updates_spilled += row.updates_spilled;
    p.disk_bytes += row.disk_bytes;
    p.net_bytes += row.net_bytes;
    p.scatter_cpu_seconds += row.scatter_cpu_seconds;
    p.gather_cpu_seconds += row.gather_cpu_seconds;
    p.apply_cpu_seconds += row.apply_cpu_seconds;
    p.buffer_hit_rate = row.buffer_hit_rate;
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    job->state = JobState::kRunning;
    job->profile.job_id = job->id;
    cv_.notify_all();
  }
  obs::EmitEvent(obs::EventType::kJobStart, job->id);

  Outcome outcome;
  Status status;
  int attempt = 0;
  for (;;) {
    ++attempt;
    WallTimer attempt_timer;
    {
      trace::TraceSpan run_span("service.run", "service");
      run_span.AddArg("job", job->id);
      run_span.AddArg("attempt", static_cast<uint64_t>(attempt));
      status = RunForSpec(cluster_, pg_, job->spec, options, &outcome);
    }
    if (!status.ok() && status.IsMachineLost()) {
      std::lock_guard<std::mutex> lock(mu_);
      job->profile.lost_machine = status.machine_id();
    }
    if (status.ok() || !status.IsRetryable()) break;
    if (attempt > options_.max_retries) break;  // retry budget exhausted

    // Job-level recovery tax: the whole failed attempt is detection +
    // lost work (in-engine recovery is off for service jobs); the next
    // attempt's resume restore and replayed supersteps show up in its
    // profile rows.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++job->profile.recoveries;
      job->profile.recovery_detect_seconds += attempt_timer.Seconds();
    }

    // Prepare the retry: the failed attempt may have left messages in
    // the job's tag range and (after a machine.kill) dead machines.
    DrainTags(options.fabric_tag_base);
    cluster_->ReviveAllMachines();
    job_retries_.Add(1);
    trace::Instant("service.retry", "service", "job", job->id, "attempt",
                   static_cast<uint64_t>(attempt));
    obs::EmitEvent(obs::EventType::kJobRetry, job->id, -1, -1,
                   StatusCodeToString(status.code()), "attempt",
                   static_cast<uint64_t>(attempt));
    TGPP_LOG(Warning) << "job " << job->id << " attempt " << attempt
                   << " failed (" << StatusCodeToString(status.code())
                   << ": " << status.message() << "); retrying";
    if (!WaitBackoff(job, attempt)) {
      // Shutdown or cancel fired during backoff; surface the token's
      // status (not the retryable failure) as the terminal state.
      Status token = job->cancel.Check();
      if (!token.ok()) status = token;
      break;
    }
    options.resume_from_checkpoint = true;
    outcome = Outcome{};
  }

  // Best-effort scratch cleanup; the next job with this id prefix cannot
  // exist, but long-lived daemons should not leak one file set per job.
  // Runs only after the terminal attempt — retries resume from the
  // checkpoint files an earlier attempt wrote.
  for (int m = 0; m < cluster_->num_machines(); ++m) {
    DiskDevice* disk = cluster_->machine(m)->disk();
    (void)disk->Remove(options.scratch_prefix + kVertexAttrFileName);
    for (int c = 1; c < pg_->q; ++c) {
      (void)disk->Remove(options.scratch_prefix + "spill_" +
                         std::to_string(c) + ".bin");
    }
    if (options.checkpoint_every > 0) {
      // Epoch checkpoints land at multiples of checkpoint_every (the
      // engine keeps at most the latest two, plus epoch 0 early on).
      for (int e = 0; e <= kMaxEpochScan; e += options.checkpoint_every) {
        (void)disk->Remove(options.scratch_prefix + "checkpoint_auto" +
                           std::to_string(e) + ".ckpt");
      }
    }
  }
  // A cancelled or failed job may have left messages in its tag range
  // (e.g. updates sent but never gathered); drain them so the slot's
  // next tenant starts clean.
  DrainTags(options.fabric_tag_base);

  std::lock_guard<std::mutex> lock(mu_);
  job->attempts = attempt;
  job->retries_exhausted = !status.ok() && status.IsRetryable();
  job->result_crc = outcome.crc;
  job->aggregate = outcome.stats.aggregate_sum;
  job->supersteps = outcome.stats.supersteps;
  // Engine-observed recovery tax from the terminal attempt (nonzero only
  // when in-engine recovery ran; service jobs normally pay their tax at
  // the job level, accumulated in the retry loop above).
  job->profile.recoveries += outcome.stats.recoveries;
  job->profile.recovery_detect_seconds +=
      outcome.stats.recovery_detect_seconds;
  job->profile.recovery_restore_seconds +=
      outcome.stats.recovery_restore_seconds;
  job->profile.recovery_replay_seconds +=
      outcome.stats.recovery_replay_seconds;
  job->profile.checkpoints += outcome.stats.checkpoints;
  job->profile.resumed = job->profile.resumed || outcome.stats.resumed;
  JobState terminal = JobState::kDone;
  if (status.IsCancelled()) {
    terminal = JobState::kCancelled;
  } else if (!status.ok()) {
    terminal = JobState::kFailed;
  }
  FinishLocked(job, terminal, status);
  PumpLocked();
  cv_.notify_all();
}

// Runner body for update jobs: no engine, no fabric traffic — the batch
// goes straight through the DynamicGraph's WAL + page-edit path while
// the job holds the entire ledger (nothing else runs). Machine loss is
// retryable the dyn way: revive, WAL-replay recovery, then a full
// idempotent re-apply (mutations that already landed become counted
// skips), converging to the same bytes as a fault-free apply.
void JobManager::RunUpdateJob(Job* job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->state = JobState::kRunning;
    job->profile.job_id = job->id;
    cv_.notify_all();
  }
  obs::EmitEvent(obs::EventType::kJobStart, job->id);
  obs::SetCurrentJob(job->id);  // attribute update.applied/wal.replayed

  dyn::UpdateBatch batch;
  batch.mutations = job->parsed_mutations;
  dyn::ApplyStats stats;
  Status status;
  int attempt = 0;
  for (;;) {
    ++attempt;
    Status token = job->cancel.Check();
    if (!token.ok()) {
      status = token;
      break;
    }
    stats = dyn::ApplyStats{};
    {
      trace::TraceSpan run_span("service.update", "service");
      run_span.AddArg("job", job->id);
      run_span.AddArg("attempt", static_cast<uint64_t>(attempt));
      status = dynamic_->ApplyBatch(batch, &stats);
    }
    if (!status.ok() && status.IsMachineLost()) {
      std::lock_guard<std::mutex> lock(mu_);
      job->profile.lost_machine = status.machine_id();
    }
    if (status.ok() || !status.IsRetryable()) break;
    if (attempt > options_.max_retries) break;

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++job->profile.recoveries;
    }
    cluster_->ReviveAllMachines();
    Status recovered = dynamic_->Recover();
    if (!recovered.ok()) {
      status = recovered;
      break;
    }
    job_retries_.Add(1);
    obs::EmitEvent(obs::EventType::kJobRetry, job->id, -1, -1,
                   StatusCodeToString(status.code()), "attempt",
                   static_cast<uint64_t>(attempt));
    TGPP_LOG(Warning) << "update job " << job->id << " attempt " << attempt
                      << " failed (" << StatusCodeToString(status.code())
                      << ": " << status.message()
                      << "); recovered, retrying";
    if (!WaitBackoff(job, attempt)) {
      Status token2 = job->cancel.Check();
      if (!token2.ok()) status = token2;
      break;
    }
  }
  obs::SetCurrentJob(0);

  std::lock_guard<std::mutex> lock(mu_);
  job->attempts = attempt;
  job->retries_exhausted = !status.ok() && status.IsRetryable();
  job->epoch = stats.epoch;
  job->edges_inserted = stats.inserted;
  job->edges_deleted = stats.deleted;
  JobState terminal = JobState::kDone;
  if (status.IsCancelled()) {
    terminal = JobState::kCancelled;
  } else if (!status.ok()) {
    terminal = JobState::kFailed;
  }
  FinishLocked(job, terminal, status);
  PumpLocked();
  cv_.notify_all();
}

// Backoff before retry `attempt` (1-based): retry_backoff_ms * 2^(N-1)
// plus a deterministic jitter in [0, retry_backoff_ms) keyed on
// (seed, job id, attempt) — reproducible for tests, decorrelated across
// jobs so a herd of failures does not retry in lockstep.
bool JobManager::WaitBackoff(Job* job, int attempt) {
  const int shift = std::min(attempt - 1, 20);
  const int64_t base = std::max<int64_t>(1, options_.retry_backoff_ms);
  const int64_t jitter = static_cast<int64_t>(
      Mix64(options_.retry_jitter_seed ^ job->id ^
            static_cast<uint64_t>(attempt)) %
      static_cast<uint64_t>(base));
  const int64_t wait_ms = base * (int64_t{1} << shift) + jitter;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(wait_ms), [&] {
    return shutdown_ || !job->cancel.Check().ok();
  });
  return !shutdown_ && job->cancel.Check().ok();
}

// Caller holds mu_. Releases everything the job holds (reservation, tag
// slot) and records the terminal state + metrics.
void JobManager::FinishLocked(Job* job, JobState state,
                              const Status& status) {
  TGPP_CHECK(IsTerminal(state));
  const bool was_admitted = job->tag_slot >= 0;
  if (job->reserved_bytes > 0) {
    ledger_->Release(job->reserved_bytes);
    reserved_bytes_.Add(-static_cast<int64_t>(job->reserved_bytes));
    job->reserved_bytes = 0;
  }
  if (was_admitted) {
    slot_taken_[static_cast<size_t>(job->tag_slot)] = false;
    job->tag_slot = -1;
    --running_;
    jobs_running_.Add(-1);
    job->run_seconds = SecondsSince(job->admit_time);
    run_latency_ns_.Record(static_cast<uint64_t>(job->run_seconds * 1e9));
  }
  job->state = state;
  if (!status.ok()) {
    job->error = status.message();
    job->status_code = StatusCodeToString(status.code());
  }
  switch (state) {
    case JobState::kDone:
      jobs_done_.Add(1);
      obs::EmitEvent(obs::EventType::kJobDone, job->id, -1, -1, nullptr,
                     "supersteps", static_cast<uint64_t>(job->supersteps),
                     "attempts", static_cast<uint64_t>(job->attempts));
      break;
    case JobState::kCancelled:
      jobs_cancelled_.Add(1);
      obs::EmitEvent(obs::EventType::kJobCancelled, job->id, -1, -1,
                     StatusCodeToString(status.code()));
      break;
    default:
      jobs_failed_.Add(1);
      obs::EmitEvent(obs::EventType::kJobFailed, job->id,
                     job->profile.lost_machine, -1,
                     StatusCodeToString(status.code()), "attempts",
                     static_cast<uint64_t>(job->attempts));
      break;
  }
  trace::Instant("service.finish", "service", "job", job->id);
}

void JobManager::DrainTags(uint32_t tag_base) {
  Fabric* fabric = cluster_->fabric();
  Message msg;
  for (int m = 0; m < cluster_->num_machines(); ++m) {
    for (uint32_t t = tag_base; t < tag_base + kTagsPerJob; ++t) {
      while (fabric->TryRecv(m, t, &msg)) {
      }
    }
  }
}

Status JobManager::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Job* job = FindLocked(id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  if (IsTerminal(job->state)) return Status::OK();
  job->cancel.Cancel();
  if (job->state == JobState::kQueued) {
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    jobs_queued_.Add(-1);
    FinishLocked(job, JobState::kCancelled,
                 Status::Cancelled("cancelled while queued"));
    PumpLocked();
  }
  // Running jobs observe the token at their next superstep boundary.
  cv_.notify_all();
  return Status::OK();
}

JobRecord JobManager::SnapshotLocked(const Job& job) const {
  JobRecord record;
  record.id = job.id;
  record.spec = job.spec;
  record.state = job.state;
  record.error = job.error;
  record.status_code = job.status_code;
  record.reserved_bytes = job.reserved_bytes;
  record.result_crc = job.result_crc;
  record.aggregate = job.aggregate;
  record.supersteps = job.supersteps;
  record.queue_wait_seconds = job.queue_wait_seconds;
  record.run_seconds = job.run_seconds;
  record.attempts = job.attempts;
  record.retries_exhausted = job.retries_exhausted;
  record.epoch = job.epoch;
  record.edges_inserted = job.edges_inserted;
  record.edges_deleted = job.edges_deleted;
  return record;
}

Result<JobRecord> JobManager::GetJob(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  Job* job = FindLocked(id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  return SnapshotLocked(*job);
}

Result<JobProfile> JobManager::GetProfile(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  Job* job = FindLocked(id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  JobProfile profile = job->profile;
  profile.job_id = id;  // set even if the job never started running
  return profile;
}

std::vector<JobRecord> JobManager::ListJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> records;
  records.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    records.push_back(SnapshotLocked(*job));
  }
  return records;
}

Result<JobRecord> JobManager::Wait(uint64_t id, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  Job* job = FindLocked(id);
  if (job == nullptr) {
    return Status::NotFound("no job " + std::to_string(id));
  }
  auto done = [&] { return IsTerminal(job->state); };
  if (timeout_ms < 0) {
    cv_.wait(lock, done);
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           done)) {
    return Status::Timeout("job " + std::to_string(id) +
                           " still " + JobStateName(job->state));
  }
  return SnapshotLocked(*job);
}

void JobManager::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Queued jobs die immediately; running jobs get their token fired
    // and are joined below.
    while (!queue_.empty()) {
      Job* job = FindLocked(queue_.front());
      queue_.pop_front();
      jobs_queued_.Add(-1);
      job->cancel.Cancel();
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("service shutdown"));
    }
    for (auto& [id, job] : jobs_) {
      if (!IsTerminal(job->state)) job->cancel.Cancel();
      if (job->runner.joinable()) to_join.push_back(std::move(job->runner));
    }
    cv_.notify_all();
  }
  for (std::thread& t : to_join) t.join();
}

}  // namespace tgpp::service
