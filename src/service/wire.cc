#include "service/wire.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tgpp::service {
namespace {

// Cursor over the input line. Parsing never throws; every malformed
// construct surfaces as InvalidArgument naming the offset.
struct Cursor {
  const std::string& s;
  size_t i = 0;

  void SkipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool AtEnd() {
    SkipWs();
    return i >= s.size();
  }
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("bad JSON at offset " +
                                   std::to_string(i) + ": " + what);
  }
  Status Expect(char c) {
    SkipWs();
    if (i >= s.size() || s[i] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++i;
    return Status::OK();
  }
};

Status ParseStringToken(Cursor* c, std::string* out) {
  TGPP_RETURN_IF_ERROR(c->Expect('"'));
  out->clear();
  while (c->i < c->s.size()) {
    char ch = c->s[c->i++];
    if (ch == '"') return Status::OK();
    if (ch == '\\') {
      if (c->i >= c->s.size()) return c->Fail("dangling escape");
      char esc = c->s[c->i++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        default:
          return c->Fail("unsupported escape");
      }
    } else {
      out->push_back(ch);
    }
  }
  return c->Fail("unterminated string");
}

// Advances past one balanced {...} or [...] (strings respected) and
// returns the raw slice including the brackets.
Status SkipRaw(Cursor* c, std::string* out) {
  c->SkipWs();
  size_t start = c->i;
  int depth = 0;
  while (c->i < c->s.size()) {
    char ch = c->s[c->i];
    if (ch == '"') {
      std::string ignored;
      TGPP_RETURN_IF_ERROR(ParseStringToken(c, &ignored));
      continue;
    }
    ++c->i;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') {
      --depth;
      if (depth == 0) {
        *out = c->s.substr(start, c->i - start);
        return Status::OK();
      }
    }
  }
  return c->Fail("unbalanced brackets");
}

}  // namespace

Result<JsonObject> JsonObject::Parse(const std::string& line) {
  JsonObject obj;
  Cursor c{line};
  TGPP_RETURN_IF_ERROR(c.Expect('{'));
  c.SkipWs();
  if (c.i < line.size() && line[c.i] == '}') {
    ++c.i;
    return obj;
  }
  while (true) {
    std::string key;
    TGPP_RETURN_IF_ERROR(ParseStringToken(&c, &key));
    TGPP_RETURN_IF_ERROR(c.Expect(':'));
    c.SkipWs();
    if (c.i >= line.size()) return c.Fail("missing value");

    Value value;
    char ch = line[c.i];
    if (ch == '"') {
      value.kind = Kind::kString;
      TGPP_RETURN_IF_ERROR(ParseStringToken(&c, &value.text));
    } else if (ch == '{' || ch == '[') {
      value.kind = Kind::kRaw;
      TGPP_RETURN_IF_ERROR(SkipRaw(&c, &value.text));
    } else if (line.compare(c.i, 4, "true") == 0) {
      value.kind = Kind::kBool;
      value.boolean = true;
      c.i += 4;
    } else if (line.compare(c.i, 5, "false") == 0) {
      value.kind = Kind::kBool;
      c.i += 5;
    } else if (line.compare(c.i, 4, "null") == 0) {
      value.kind = Kind::kNull;
      c.i += 4;
    } else {
      value.kind = Kind::kNumber;
      size_t start = c.i;
      while (c.i < line.size() &&
             (std::isdigit(static_cast<unsigned char>(line[c.i])) ||
              line[c.i] == '-' || line[c.i] == '+' || line[c.i] == '.' ||
              line[c.i] == 'e' || line[c.i] == 'E')) {
        ++c.i;
      }
      if (c.i == start) return c.Fail("unrecognized value");
      value.text = line.substr(start, c.i - start);
    }
    obj.values_.emplace(std::move(key), std::move(value));

    c.SkipWs();
    if (c.i < line.size() && line[c.i] == ',') {
      ++c.i;
      continue;
    }
    TGPP_RETURN_IF_ERROR(c.Expect('}'));
    break;
  }
  return obj;
}

bool JsonObject::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

Result<std::string> JsonObject::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kString) {
    return Status::InvalidArgument("field '" + key + "' is not a string");
  }
  return it->second.text;
}

Result<int64_t> JsonObject::GetInt(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kNumber) {
    return Status::InvalidArgument("field '" + key + "' is not a number");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.text.c_str(), &end, 10);
  if (errno != 0 || end == it->second.text.c_str()) {
    return Status::InvalidArgument("field '" + key + "' is not an integer");
  }
  return static_cast<int64_t>(v);
}

Result<double> JsonObject::GetDouble(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kNumber) {
    return Status::InvalidArgument("field '" + key + "' is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(it->second.text.c_str(), &end);
  if (errno != 0 || end == it->second.text.c_str()) {
    return Status::InvalidArgument("field '" + key + "' is not a number");
  }
  return v;
}

Result<bool> JsonObject::GetBool(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kBool) {
    return Status::InvalidArgument("field '" + key + "' is not a bool");
  }
  return it->second.boolean;
}

Result<std::string> JsonObject::StringOr(const std::string& key,
                                         std::string fallback) const {
  if (!Has(key)) return fallback;
  return GetString(key);
}

Result<int64_t> JsonObject::IntOr(const std::string& key,
                                  int64_t fallback) const {
  if (!Has(key)) return fallback;
  return GetInt(key);
}

Result<bool> JsonObject::BoolOr(const std::string& key, bool fallback) const {
  if (!Has(key)) return fallback;
  return GetBool(key);
}

Result<double> JsonObject::DoubleOr(const std::string& key,
                                    double fallback) const {
  if (!Has(key)) return fallback;
  return GetDouble(key);
}

Result<std::string> JsonObject::GetRaw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kRaw) {
    return Status::InvalidArgument("field '" + key + "' is not nested");
  }
  return it->second.text;
}

Result<std::vector<std::string>> JsonObject::GetArray(
    const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  const std::string& raw = it->second.text;
  if (it->second.kind != Kind::kRaw || raw.empty() || raw[0] != '[') {
    return Status::InvalidArgument("field '" + key + "' is not an array");
  }
  std::vector<std::string> elements;
  Cursor c{raw};
  TGPP_RETURN_IF_ERROR(c.Expect('['));
  c.SkipWs();
  if (c.i < raw.size() && raw[c.i] == ']') return elements;
  while (true) {
    std::string element;
    c.SkipWs();
    if (c.i < raw.size() && (raw[c.i] == '{' || raw[c.i] == '[')) {
      TGPP_RETURN_IF_ERROR(SkipRaw(&c, &element));
    } else if (c.i < raw.size() && raw[c.i] == '"') {
      TGPP_RETURN_IF_ERROR(ParseStringToken(&c, &element));
    } else {
      size_t start = c.i;
      while (c.i < raw.size() && raw[c.i] != ',' && raw[c.i] != ']') ++c.i;
      element = raw.substr(start, c.i - start);
    }
    elements.push_back(std::move(element));
    c.SkipWs();
    if (c.i < raw.size() && raw[c.i] == ',') {
      ++c.i;
      continue;
    }
    TGPP_RETURN_IF_ERROR(c.Expect(']'));
    break;
  }
  return elements;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

void JsonWriter::Sep(const char* key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += key;
  out_ += "\":";
}

JsonWriter& JsonWriter::Str(const char* key, const std::string& value) {
  Sep(key);
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(const char* key, int64_t value) {
  Sep(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(const char* key, uint64_t value) {
  Sep(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(const char* key, double value) {
  Sep(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(const char* key, bool value) {
  Sep(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const char* key, const std::string& json) {
  Sep(key);
  out_ += json;
  return *this;
}

std::string JsonWriter::Close() { return out_ + "}"; }

Result<JobSpec> ParseJobSpec(const JsonObject& request) {
  JobSpec spec;
  TGPP_ASSIGN_OR_RETURN(spec.query, request.StringOr("query", spec.query));
  TGPP_ASSIGN_OR_RETURN(
      auto iterations,
      request.IntOr("iterations", spec.iterations));
  spec.iterations = static_cast<int>(iterations);
  TGPP_ASSIGN_OR_RETURN(auto source, request.IntOr("source", 0));
  if (source < 0) return Status::InvalidArgument("source must be >= 0");
  spec.source = static_cast<VertexId>(source);
  TGPP_ASSIGN_OR_RETURN(auto priority, request.IntOr("priority", 0));
  spec.priority = static_cast<int>(priority);
  TGPP_ASSIGN_OR_RETURN(spec.deadline_ms, request.IntOr("deadline_ms", 0));
  TGPP_ASSIGN_OR_RETURN(spec.deterministic,
                        request.BoolOr("deterministic", true));
  // Update jobs: "mutations":["+1:2","-3:4",...] (docs/DYNAMIC.md). The
  // strings are validated against the graph at Submit, not here.
  if (request.Has("mutations")) {
    TGPP_ASSIGN_OR_RETURN(spec.mutations, request.GetArray("mutations"));
  }
  return spec;
}

std::string JobRecordToJson(const JobRecord& record) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", record.result_crc);
  JsonWriter w;
  w.UInt("id", record.id)
      .Str("query", record.spec.query)
      .Str("state", JobStateName(record.state))
      .Str("crc32", crc)
      .UInt("aggregate", record.aggregate)
      .Int("supersteps", record.supersteps)
      .UInt("reserved_bytes", record.reserved_bytes)
      .Double("queue_wait_s", record.queue_wait_seconds)
      .Double("run_s", record.run_seconds)
      .Int("attempts", record.attempts);
  if (record.spec.query == "update") {
    w.UInt("epoch", record.epoch)
        .UInt("inserted", record.edges_inserted)
        .UInt("deleted", record.edges_deleted);
  }
  if (record.retries_exhausted) w.Bool("retries_exhausted", true);
  if (!record.error.empty()) {
    w.Str("error", record.error).Str("code", record.status_code);
  }
  return w.Close();
}

std::string JobProfileToJson(const JobProfile& profile) {
  JsonWriter w;
  w.UInt("job", profile.job_id)
      .Int("supersteps", profile.supersteps)
      .Int("push_supersteps", profile.push_supersteps)
      .Int("pull_supersteps", profile.pull_supersteps)
      .UInt("updates_generated", profile.updates_generated)
      .UInt("updates_sent", profile.updates_sent)
      .UInt("updates_spilled", profile.updates_spilled)
      .UInt("disk_bytes", profile.disk_bytes)
      .UInt("net_bytes", profile.net_bytes)
      .Double("scatter_cpu_s", profile.scatter_cpu_seconds)
      .Double("gather_cpu_s", profile.gather_cpu_seconds)
      .Double("apply_cpu_s", profile.apply_cpu_seconds)
      .Double("buffer_hit_rate", profile.buffer_hit_rate)
      .Int("recoveries", profile.recoveries)
      .Double("recovery_detect_s", profile.recovery_detect_seconds)
      .Double("recovery_restore_s", profile.recovery_restore_seconds)
      .Double("recovery_replay_s", profile.recovery_replay_seconds)
      .Int("checkpoints", profile.checkpoints);
  if (profile.resumed) w.Bool("resumed", true);
  if (profile.lost_machine >= 0) {
    w.Int("lost_machine", profile.lost_machine);
  }
  if (profile.rows_dropped > 0) w.Int("rows_dropped", profile.rows_dropped);
  std::string rows = "[";
  for (size_t i = 0; i < profile.rows.size(); ++i) {
    if (i > 0) rows += ',';
    rows += profile.rows[i].ToJson();
  }
  rows += ']';
  w.Raw("rows", rows);
  return w.Close();
}

std::string ErrorLine(const Status& status) {
  return JsonWriter()
      .Bool("ok", false)
      .Str("error", status.message())
      .Str("code", StatusCodeToString(status.code()))
      .Close();
}

}  // namespace tgpp::service
