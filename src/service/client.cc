#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tgpp::service {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

StatusCode CodeFromName(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

Result<ServiceClient> ServiceClient::ConnectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect(" + path + ")");
    ::close(fd);
    return status;
  }
  return ServiceClient(fd);
}

Result<ServiceClient> ServiceClient::ConnectTcp(const std::string& host,
                                                int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Errno("connect(" + host + ":" + std::to_string(port) + ")");
    ::close(fd);
    return status;
  }
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> ServiceClient::CallRaw(const std::string& request_line) {
  if (fd_ < 0) return Status::Internal("client not connected");
  std::string out = request_line + "\n";
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) return Errno("send");
    sent += static_cast<size_t>(n);
  }
  char chunk[4096];
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) return Errno("recv");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonObject> ServiceClient::Call(const std::string& request_line) {
  TGPP_ASSIGN_OR_RETURN(auto line, CallRaw(request_line));
  TGPP_ASSIGN_OR_RETURN(auto response, JsonObject::Parse(line));
  TGPP_RETURN_IF_ERROR(StatusFromResponse(response));
  return response;
}

Status StatusFromResponse(const JsonObject& response) {
  auto ok = response.BoolOr("ok", false);
  if (!ok.ok()) return ok.status();
  if (*ok) return Status::OK();
  std::string message = "server error";
  if (auto error = response.GetString("error"); error.ok()) {
    message = *error;
  }
  StatusCode code = StatusCode::kInternal;
  if (auto name = response.GetString("code"); name.ok()) {
    code = CodeFromName(*name);
  }
  return Status(code, std::move(message));
}

}  // namespace tgpp::service
