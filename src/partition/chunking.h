// Chunk writer: persists one machine's edges as the q x (p*q) x r grid of
// edge chunks in slotted pages (paper Fig 7 (c)/(d) and Appendix A.3),
// building the two-level page index along the way.

#ifndef TGPP_PARTITION_CHUNKING_H_
#define TGPP_PARTITION_CHUNKING_H_

#include <vector>

#include "cluster/machine.h"
#include "partition/partitioner.h"

namespace tgpp::partition_internal {

// Sorts `edges` (already renumbered, src owned by `machine`) into the chunk
// grid and writes them to the machine's edge page file. Fills
// out->num_edges, out->chunks and out->page_index (out->range must already
// be set).
Status WriteMachineChunks(Machine* machine, const PartitionedGraph& pg,
                          std::vector<Edge> edges, MachinePartition* out);

}  // namespace tgpp::partition_internal

#endif  // TGPP_PARTITION_CHUNKING_H_
