#include "partition/chunking.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/page_file.h"
#include "storage/slotted_page.h"

namespace tgpp::partition_internal {

namespace {

// Chunk index of `v` within `range` split into `parts` ceil-sized pieces
// (must match PartitionedGraph::VertexChunkRange arithmetic).
int ChunkIndexOf(VertexId v, const VertexRange& range, int parts) {
  const uint64_t chunk = (range.size() + parts - 1) / parts;
  return chunk == 0 ? 0 : static_cast<int>((v - range.begin) / chunk);
}

// Writes one sub-chunk's edges (sorted by (src, dst)) as slotted pages.
// Appends page-index entries and returns the page count.
Status WriteSubChunk(PageFile* file, std::span<const Edge> edges,
                     std::vector<PageIndexEntry>* page_index,
                     uint64_t* num_pages_out) {
  uint64_t num_pages = 0;
  if (edges.empty()) {
    *num_pages_out = 0;
    return Status::OK();
  }
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPageBuilder builder(buffer.data());
  VertexId page_src_min = kInvalidVertex;
  VertexId page_src_max = 0;
  std::vector<VertexId> dsts;

  auto flush_page = [&]() -> Status {
    if (builder.empty()) return Status::OK();
    TGPP_ASSIGN_OR_RETURN(uint64_t page_no, file->AppendPage(buffer.data()));
    page_index->push_back(PageIndexEntry{page_no, page_src_min,
                                         page_src_max});
    ++num_pages;
    builder.Reset();
    page_src_min = kInvalidVertex;
    page_src_max = 0;
    return Status::OK();
  };

  auto emit_record = [&](VertexId src,
                         std::span<const VertexId> list) -> Status {
    // Split records that exceed a fresh page's capacity.
    size_t pos = 0;
    while (pos < list.size()) {
      size_t take = std::min(list.size() - pos, builder.RemainingCapacity());
      if (take == 0 || !builder.AddRecord(src, list.subspan(pos, take))) {
        TGPP_RETURN_IF_ERROR(flush_page());
        take = std::min(list.size() - pos, builder.RemainingCapacity());
        TGPP_CHECK(take > 0) << "empty page cannot hold any record";
        TGPP_CHECK(builder.AddRecord(src, list.subspan(pos, take)));
      }
      page_src_min = std::min(page_src_min, src);
      page_src_max = std::max(page_src_max, src);
      pos += take;
    }
    return Status::OK();
  };

  size_t i = 0;
  while (i < edges.size()) {
    const VertexId src = edges[i].src;
    dsts.clear();
    while (i < edges.size() && edges[i].src == src) {
      dsts.push_back(edges[i].dst);
      ++i;
    }
    TGPP_RETURN_IF_ERROR(emit_record(src, dsts));
  }
  TGPP_RETURN_IF_ERROR(flush_page());
  *num_pages_out = num_pages;
  return Status::OK();
}

}  // namespace

Status WriteMachineChunks(Machine* machine, const PartitionedGraph& pg,
                          std::vector<Edge> edges, MachinePartition* out) {
  out->num_edges = edges.size();
  out->chunks.clear();
  out->page_index.clear();

  const int p = pg.p;
  const int q = pg.q;
  const int r = pg.r;
  const VertexRange my_range = out->range;

  // Group key per edge: (src_chunk i, global dst chunk j). The grid is
  // small (q * p * q), so bucket sort by key then sort each group by dst.
  auto key_of = [&](const Edge& e) -> uint64_t {
    const int i = ChunkIndexOf(e.src, my_range, q);
    const int owner = pg.OwnerOf(e.dst);
    const int j = owner * q + ChunkIndexOf(e.dst, pg.MachineRange(owner), q);
    return static_cast<uint64_t>(i) * (p * q) + j;
  };
  std::sort(edges.begin(), edges.end(), [&](const Edge& a, const Edge& b) {
    const uint64_t ka = key_of(a);
    const uint64_t kb = key_of(b);
    if (ka != kb) return ka < kb;
    if (a.dst != b.dst) return a.dst < b.dst;  // dst-sorted for sub split
    return a.src < b.src;
  });

  // Fresh edge file (repartitioning overwrites the previous layout).
  TGPP_ASSIGN_OR_RETURN(
      PageFile file,
      PageFile::Open(machine->disk(), PartitionedGraph::kEdgeFileName));
  TGPP_RETURN_IF_ERROR(file.Clear());

  std::vector<Edge> sub_edges;
  size_t pos = 0;
  for (int i = 0; i < q; ++i) {
    for (int j = 0; j < p * q; ++j) {
      const uint64_t key = static_cast<uint64_t>(i) * (p * q) + j;
      size_t end = pos;
      while (end < edges.size() && key_of(edges[end]) == key) ++end;
      const std::span<const Edge> group(edges.data() + pos, end - pos);
      pos = end;

      // Split the (dst-sorted) group into r sub-chunks of near-equal edge
      // counts, cutting only at dst boundaries (paper Fig 7 (d): balanced
      // via degree information; equal-edge cuts achieve the same balance).
      const VertexRange dst_chunk = pg.DstChunkRange(j);
      size_t sub_begin = 0;
      for (int sub = 0; sub < r; ++sub) {
        size_t sub_end;
        if (sub == r - 1 || group.empty()) {
          sub_end = group.size();
        } else {
          sub_end = std::min(group.size(), (group.size() * (sub + 1)) / r);
          // Advance to the next dst boundary so sub-chunks own disjoint
          // dst ranges (required for CAS-free NUMA-local gather).
          while (sub_end > sub_begin && sub_end < group.size() &&
                 group[sub_end].dst == group[sub_end - 1].dst) {
            ++sub_end;
          }
        }
        if (sub_end < sub_begin) sub_end = sub_begin;

        EdgeChunkInfo info;
        info.src_chunk = i;
        info.dst_chunk = j;
        info.sub_chunk = sub;
        info.src_range = pg.VertexChunkRange(machine->id(), i);
        info.dst_range =
            VertexRange{sub_begin < sub_end ? group[sub_begin].dst
                                            : dst_chunk.begin,
                        sub_begin < sub_end ? group[sub_end - 1].dst + 1
                                            : dst_chunk.begin};
        info.num_edges = sub_end - sub_begin;
        info.first_page = file.num_pages();

        // Sort the sub-chunk by (src, dst) so records group by source.
        sub_edges.assign(group.begin() + sub_begin,
                         group.begin() + sub_end);
        std::sort(sub_edges.begin(), sub_edges.end());
        TGPP_RETURN_IF_ERROR(WriteSubChunk(&file, sub_edges,
                                           &out->page_index,
                                           &info.num_pages));
        out->chunks.push_back(info);
        sub_begin = sub_end;
      }
    }
  }
  TGPP_CHECK(pos == edges.size())
      << "chunking dropped edges: " << pos << " of " << edges.size();
  return Status::OK();
}

}  // namespace tgpp::partition_internal
