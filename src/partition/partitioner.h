// Graph partitioning for the simulated cluster (paper §3).
//
// A PartitionedGraph records the renumbering (old -> new vertex IDs), the
// contiguous new-ID range owned by each machine, and — per machine — the
// q x (p*q) x r edge-chunk grid persisted as slotted pages on that
// machine's disk, together with the two-level page index (paper A.3).
//
// Schemes:
//   kBbp        — balanced buffer-aware partitioning: degree-sorted
//                 round-robin placement, degree-descending renumbering
//                 within each machine (the paper's contribution).
//   kRandom     — uniform random vertex placement (Fig 8(b) baseline).
//   kHashPregel — hash placement as in Pregel+ (Fig 8(b) baseline).
//   kHashGraphx — hash placement with GraphX's mixing (Fig 8(b) baseline).
//
// All schemes share the downstream chunking/writing machinery, so the only
// differences measured are placement balance and ID ordering — the paper's
// comparison.

#ifndef TGPP_PARTITION_PARTITIONER_H_
#define TGPP_PARTITION_PARTITIONER_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "graph/edge_list.h"

namespace tgpp {

enum class PartitionScheme {
  kBbp,
  kRandom,
  kHashPregel,
  kHashGraphx,
};

const char* PartitionSchemeName(PartitionScheme scheme);

// One entry of the second index level: a page and the (inclusive) range of
// source IDs of the records it holds.
struct PageIndexEntry {
  uint64_t page_no;
  VertexId src_min;
  VertexId src_max;
};

// One edge chunk (paper Fig 7 (c)/(d)): edges with src in `src_range` and
// dst in `dst_range`, stored as pages [first_page, first_page + num_pages)
// of the machine's edge page file.
struct EdgeChunkInfo {
  int src_chunk;   // i in [0, q)
  int dst_chunk;   // j in [0, p*q)
  int sub_chunk;   // NUMA sub-chunk in [0, r)
  VertexRange src_range;
  VertexRange dst_range;  // refined by the sub-chunk split
  uint64_t num_edges = 0;
  uint64_t first_page = 0;
  uint64_t num_pages = 0;
  // Overflow delta pages appended by the dynamic-graph mutator when an
  // insert no longer fits in the chunk's base pages (docs/DYNAMIC.md).
  // Scans visit base pages first, then delta pages in this order.
  std::vector<uint64_t> delta_pages;

  // All pages of this chunk, base then delta, in scan order.
  std::vector<uint64_t> PageNumbers() const {
    std::vector<uint64_t> pages;
    pages.reserve(num_pages + delta_pages.size());
    for (uint64_t p = first_page; p < first_page + num_pages; ++p) {
      pages.push_back(p);
    }
    pages.insert(pages.end(), delta_pages.begin(), delta_pages.end());
    return pages;
  }
};

struct MachinePartition {
  VertexRange range;  // owned new-ID range (consecutive, per §3 objective 3)
  uint64_t num_edges = 0;
  // Ordered by (src_chunk, dst_chunk, sub_chunk); pages of consecutive
  // chunks are consecutive in the file, so chunk iteration is sequential.
  std::vector<EdgeChunkInfo> chunks;
  std::vector<PageIndexEntry> page_index;  // ascending page_no
};

struct PartitionedGraph {
  static constexpr const char* kEdgeFileName = "edges.pf";

  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  int p = 1;
  int q = 1;
  int r = 1;
  PartitionScheme scheme = PartitionScheme::kBbp;

  std::vector<VertexId> old_to_new;
  std::vector<VertexId> new_to_old;
  std::vector<uint64_t> out_degree;  // indexed by NEW id

  std::vector<MachinePartition> machines;

  // Bumped by dyn::DynamicGraph once per applied update batch. A mutated
  // graph (epoch > 0) loses the within-chunk dst ordering guarantee, so
  // full-list materialization sorts each merged adjacency list.
  uint64_t mutation_epoch = 0;
  bool mutated() const { return mutation_epoch > 0; }

  // Owner machine of a new-ID vertex.
  int OwnerOf(VertexId new_id) const;

  const VertexRange& MachineRange(int m) const {
    return machines[m].range;
  }

  // Vertex chunk c (0-based, c < q) of machine m: the machine range split
  // into q near-equal consecutive pieces.
  VertexRange VertexChunkRange(int m, int c) const;

  // Global destination chunk j in [0, p*q): chunk (j % q) of machine
  // (j / q).
  VertexRange DstChunkRange(int j) const {
    return VertexChunkRange(j / q, j % q);
  }

  // Edges per machine max/mean ratio — the balance measure of §5.2.2.
  double EdgeBalanceRatio() const;
};

struct PartitionOptions {
  PartitionScheme scheme = PartitionScheme::kBbp;
  int q = 1;
  uint64_t seed = 7;  // for kRandom
};

// Partitions `graph` across the machines of `cluster`, writing each
// machine's edge chunks to its disk. The cluster's numa_nodes_per_machine
// provides r. Overwrites any previous partition on disk.
Result<PartitionedGraph> PartitionGraph(Cluster* cluster,
                                        const EdgeList& graph,
                                        const PartitionOptions& options);

namespace partition_internal {

// Scheme-specific step 1: returns machine assignment per OLD vertex id.
std::vector<int> AssignVertices(const EdgeList& graph,
                                const std::vector<uint64_t>& degrees, int p,
                                PartitionScheme scheme, uint64_t seed);

// Scheme-specific step 2: builds old<->new maps. For BBP, new IDs within a
// machine descend by degree; other schemes keep old-ID order.
void Renumber(const std::vector<int>& assignment,
              const std::vector<uint64_t>& degrees, int p,
              PartitionScheme scheme, std::vector<VertexId>* old_to_new,
              std::vector<VertexId>* new_to_old,
              std::vector<VertexRange>* machine_ranges);

}  // namespace partition_internal

}  // namespace tgpp

#endif  // TGPP_PARTITION_PARTITIONER_H_
