#include "partition/partitioner.h"

#include <algorithm>
#include <queue>
#include <tuple>

#include "common/logging.h"
#include "graph/degree.h"
#include "partition/chunking.h"
#include "util/rng.h"

namespace tgpp {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kBbp:
      return "BBP";
    case PartitionScheme::kRandom:
      return "Random";
    case PartitionScheme::kHashPregel:
      return "Hash(Pregel+)";
    case PartitionScheme::kHashGraphx:
      return "Hash(GraphX)";
  }
  return "?";
}

int PartitionedGraph::OwnerOf(VertexId new_id) const {
  // Machine ranges are consecutive and ascending; binary search.
  int lo = 0;
  int hi = p - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (new_id >= machines[mid].range.end) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

VertexRange PartitionedGraph::VertexChunkRange(int m, int c) const {
  const VertexRange& range = machines[m].range;
  const uint64_t n = range.size();
  const uint64_t chunk = (n + q - 1) / q;
  const VertexId begin = range.begin + std::min<uint64_t>(n, c * chunk);
  const VertexId end = range.begin + std::min<uint64_t>(n, (c + 1) * chunk);
  return VertexRange{begin, end};
}

double PartitionedGraph::EdgeBalanceRatio() const {
  uint64_t max_edges = 0;
  uint64_t total = 0;
  for (const MachinePartition& m : machines) {
    max_edges = std::max(max_edges, m.num_edges);
    total += m.num_edges;
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / machines.size();
  return static_cast<double>(max_edges) / mean;
}

Result<PartitionedGraph> PartitionGraph(Cluster* cluster,
                                        const EdgeList& graph,
                                        const PartitionOptions& options) {
  if (options.q < 1) {
    return Status::InvalidArgument("q must be >= 1");
  }
  const int p = cluster->num_machines();

  PartitionedGraph pg;
  pg.num_vertices = graph.num_vertices;
  pg.num_edges = graph.num_edges();
  pg.p = p;
  pg.q = options.q;
  pg.r = cluster->config().numa_nodes_per_machine;
  pg.scheme = options.scheme;

  // Step 1: placement. BBP sorts by degree and deals round-robin; the
  // baseline schemes hash or randomize.
  const std::vector<uint64_t> degrees = ComputeOutDegrees(graph);
  const std::vector<int> assignment = partition_internal::AssignVertices(
      graph, degrees, p, options.scheme, options.seed);

  // Step 2: renumbering into consecutive per-machine ranges (BBP also
  // orders by descending degree within a machine).
  std::vector<VertexRange> machine_ranges;
  partition_internal::Renumber(assignment, degrees, p, options.scheme,
                               &pg.old_to_new, &pg.new_to_old,
                               &machine_ranges);

  pg.out_degree.assign(pg.num_vertices, 0);
  for (VertexId old_id = 0; old_id < pg.num_vertices; ++old_id) {
    pg.out_degree[pg.old_to_new[old_id]] = degrees[old_id];
  }

  pg.machines.resize(p);
  for (int m = 0; m < p; ++m) pg.machines[m].range = machine_ranges[m];

  // Step 3: bucket renumbered edges by owner machine.
  std::vector<std::vector<Edge>> buckets(p);
  for (const Edge& e : graph.edges) {
    const Edge renumbered{pg.old_to_new[e.src], pg.old_to_new[e.dst]};
    buckets[pg.OwnerOf(renumbered.src)].push_back(renumbered);
  }

  // Step 4: each machine chunks and writes its bucket to its own disk in
  // parallel (the distributed part of BBP; I/O is counted per machine).
  Status status = cluster->RunOnAll([&](int m) -> Status {
    return partition_internal::WriteMachineChunks(
        cluster->machine(m), pg, std::move(buckets[m]), &pg.machines[m]);
  });
  TGPP_RETURN_IF_ERROR(status);
  return pg;
}

namespace partition_internal {

std::vector<int> AssignVertices(const EdgeList& graph,
                                const std::vector<uint64_t>& degrees, int p,
                                PartitionScheme scheme, uint64_t seed) {
  const uint64_t n = graph.num_vertices;
  std::vector<int> assignment(n);
  switch (scheme) {
    case PartitionScheme::kBbp: {
      // Sort vertices by descending degree and deal them across machines
      // (paper §3). Mechanism note: the paper says "round-robin", which
      // is adequate at billion-vertex scale where consecutive degrees are
      // nearly equal; at our scaled-down sizes the head of the degree
      // sequence is so heavy that modular dealing leaves the machine that
      // drew each group's largest vertex persistently overloaded. We
      // therefore deal each vertex to the machine with the least edge
      // load so far (LPT), capped at ceil(|V|/p) vertices per machine —
      // which achieves *both* of BBP's stated objectives (balanced edges
      // and balanced vertex counts) and degenerates to round-robin when
      // degrees are uniform.
      std::vector<VertexId> order(n);
      for (VertexId v = 0; v < n; ++v) order[v] = v;
      std::stable_sort(order.begin(), order.end(),
                       [&degrees](VertexId a, VertexId b) {
                         return degrees[a] > degrees[b];
                       });
      const uint64_t vertex_cap = (n + p - 1) / p;
      // Min-heap of (edge load, vertex count, machine); ties resolve to
      // the lowest machine id for determinism.
      using Entry = std::tuple<uint64_t, uint64_t, int>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
          heap;
      for (int m = 0; m < p; ++m) heap.emplace(0, 0, m);
      for (uint64_t rank = 0; rank < n; ++rank) {
        std::vector<Entry> capped;
        Entry top = heap.top();
        heap.pop();
        while (std::get<1>(top) >= vertex_cap) {
          capped.push_back(top);
          top = heap.top();
          heap.pop();
        }
        for (const Entry& e : capped) heap.push(e);
        assignment[order[rank]] = std::get<2>(top);
        heap.emplace(std::get<0>(top) + degrees[order[rank]],
                     std::get<1>(top) + 1, std::get<2>(top));
      }
      break;
    }
    case PartitionScheme::kRandom: {
      Xoshiro256 rng(seed);
      for (VertexId v = 0; v < n; ++v) {
        assignment[v] = static_cast<int>(rng.NextBounded(p));
      }
      break;
    }
    case PartitionScheme::kHashPregel: {
      for (VertexId v = 0; v < n; ++v) {
        assignment[v] = static_cast<int>(Mix64(v) % p);
      }
      break;
    }
    case PartitionScheme::kHashGraphx: {
      // GraphX multiplies by a large prime before taking the modulus.
      for (VertexId v = 0; v < n; ++v) {
        assignment[v] =
            static_cast<int>(Mix64(v * 1125899906842597ull + 3) % p);
      }
      break;
    }
  }
  return assignment;
}

void Renumber(const std::vector<int>& assignment,
              const std::vector<uint64_t>& degrees, int p,
              PartitionScheme scheme, std::vector<VertexId>* old_to_new,
              std::vector<VertexId>* new_to_old,
              std::vector<VertexRange>* machine_ranges) {
  const uint64_t n = assignment.size();

  // Per-machine vertex lists in old-ID order.
  std::vector<std::vector<VertexId>> members(p);
  for (VertexId v = 0; v < n; ++v) members[assignment[v]].push_back(v);

  if (scheme == PartitionScheme::kBbp) {
    // Degree-ordered IDs within each machine, so that ID comparison acts
    // as the degree-order partial-order constraint that accelerates set
    // intersection (paper §3). Deviation from the paper's text: we assign
    // IDs in ASCENDING degree order (the paper says descending). With the
    // order-filtered intersections of Fig 19 (common neighbors w > v),
    // ascending rank truncates hub-hub intersections to near-empty
    // suffixes — the classical degree-rank orientation — and is what
    // empirically realizes the paper's claimed group2 speedup here;
    // descending order made those intersections full-length and slower
    // than random renumbering. See DESIGN.md §Substitutions.
    for (auto& list : members) {
      std::stable_sort(list.begin(), list.end(),
                       [&degrees](VertexId a, VertexId b) {
                         return degrees[a] < degrees[b];
                       });
    }
  }

  old_to_new->assign(n, kInvalidVertex);
  new_to_old->assign(n, kInvalidVertex);
  machine_ranges->resize(p);
  VertexId next_id = 0;
  for (int m = 0; m < p; ++m) {
    (*machine_ranges)[m].begin = next_id;
    for (VertexId old_id : members[m]) {
      (*old_to_new)[old_id] = next_id;
      (*new_to_old)[next_id] = old_id;
      ++next_id;
    }
    (*machine_ranges)[m].end = next_id;
  }
}

}  // namespace partition_internal
}  // namespace tgpp
