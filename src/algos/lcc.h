// Local clustering coefficient: per-vertex triangle counting (paper §5.1).
//
// Same two-walk enumeration as triangle counting, but each found triangle
// (u, v, w) emits +1 updates to all three corners; the apply computes
// lcc(x) = 2 * t(x) / (deg(x) * (deg(x) - 1)). This is the higher
// space/time-complexity member of the group2 queries: its update volume
// is proportional to three times the triangle count and flows through the
// full-mode sparse local gather buffers.

#ifndef TGPP_ALGOS_LCC_H_
#define TGPP_ALGOS_LCC_H_

#include "core/app.h"
#include "graph/csr.h"
#include "partition/partitioner.h"

namespace tgpp {

struct LccAttr {
  double lcc;
  uint64_t degree;
};

inline KWalkApp<LccAttr, uint64_t> MakeLccApp(const PartitionedGraph* pg) {
  KWalkApp<LccAttr, uint64_t> app;
  app.k = 2;
  app.mode = AdjMode::kFull;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = 1;

  app.init = [pg](VertexId vid, LccAttr& attr) {
    attr.lcc = 0.0;
    attr.degree = pg->out_degree[vid];  // undirected graph: out == total
    return true;
  };

  app.adj_scatter[1] = [](ScatterContext<LccAttr, uint64_t>& ctx, VertexId u,
                          const LccAttr&, std::span<const VertexId> adj) {
    for (VertexId v : adj) {
      if (ctx.CheckPartialOrder(u, v)) ctx.Mark(v);
    }
  };

  app.adj_scatter[2] = [](ScatterContext<LccAttr, uint64_t>& ctx, VertexId v,
                          const LccAttr&, std::span<const VertexId> adj) {
    for (VertexId u : ctx.GetParentList(v)) {
      ForEachCommonAbove(ctx.GetAdjList(u), adj, v, [&](VertexId w) {
        ctx.Update(u, 1);
        ctx.Update(v, 1);
        ctx.Update(w, 1);
        ctx.AggregateAdd(1);
      });
    }
  };

  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) { acc += in; };
  app.vertex_apply = [](VertexId, LccAttr& attr, const uint64_t* update) {
    const uint64_t triangles = update != nullptr ? *update : 0;
    attr.lcc = attr.degree >= 2
                   ? 2.0 * static_cast<double>(triangles) /
                         (static_cast<double>(attr.degree) *
                          static_cast<double>(attr.degree - 1))
                   : 0.0;
    return false;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_LCC_H_
