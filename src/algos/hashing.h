// Deterministic hashing shared by kernels and their references.
//
// Derandomized kernels (delta-stepping edge weights, label-propagation
// neighbor sampling, MIS round priorities) replace random draws with
// hashes of stable quantities — ORIGINAL vertex ids and round numbers —
// so the distributed engine and the single-threaded references in
// reference.cc compute *identical* pseudo-random choices and results
// match bit for bit under --deterministic (docs/ALGORITHMS.md).

#ifndef TGPP_ALGOS_HASHING_H_
#define TGPP_ALGOS_HASHING_H_

#include <cstdint>

#include "util/rng.h"  // the 1-arg Mix64 (SplitMix64 finalizer)

namespace tgpp {

inline uint64_t Mix64(uint64_t a, uint64_t b) {
  return Mix64(a + 0x632be59bd9b4e019ull * (b + 1));
}

inline uint64_t Mix64(uint64_t a, uint64_t b, uint64_t c) {
  return Mix64(Mix64(a, b), c);
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_HASHING_H_
