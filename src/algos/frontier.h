// Work-efficient frontier subsystem: sparse/dense frontier
// representations, per-window density decisions, and push/pull direction
// selection (docs/ALGORITHMS.md, "Frontiers and direction").
//
// The design follows Beamer's direction-optimizing BFS and the
// Ligra-style |frontier| + deg(frontier) density rule that Dhulipala,
// Blelloch and Shun use across their algorithm catalog (PAPERS.md):
//
//   - A Frontier holds a dense bitmap (ground truth) plus, while the
//     population is small, a sorted index list. Adds past the sparse
//     capacity automatically drop the list (sparse -> dense switch);
//     RebuildSparse() re-materializes it when the population has shrunk
//     back (dense -> sparse).
//   - A FrontierView is the per-superstep, per-machine snapshot the
//     engine takes of its active bitmap: it materializes the index list
//     only when cheap, and answers the per-window range queries
//     (count / degree sum / iteration) that the NWSM scatter loop needs.
//   - ChooseDirection / ChooseWindowMode are the pure decision
//     functions, unit-tested in tests/frontier_test.cc and applied by
//     NwsmEngine per superstep (direction) and per vertex window
//     (sparse vs. dense scan).
//
// This header is intentionally dependency-light (bitmap + graph types
// only): core/engine.h includes it, and kernels in src/algos/ may use it
// without pulling in the engine.

#ifndef TGPP_ALGOS_FRONTIER_H_
#define TGPP_ALGOS_FRONTIER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/bitmap.h"

namespace tgpp {

// Scatter direction of one superstep. Push streams edges of frontier
// sources and sends updates to their destinations; pull scans the edge
// chunks of *undecided* vertices and lets each read its (symmetric)
// neighborhood, early-exiting on the first frontier neighbor.
enum class Direction { kPush, kPull };

// Engine-level direction policy (EngineOptions::frontier.direction).
enum class DirectionMode {
  kPush,  // always push — the naive vertex-centric schedule (default)
  kPull,  // always pull (kernels providing pull_scatter only)
  kAuto,  // per-superstep Beamer/Ligra-style switching
};

// How a Frontier/FrontierView currently answers queries.
enum class FrontierRep { kSparse, kDense };

// How the scatter loop treats one vertex window.
enum class WindowMode {
  kSkip,    // no active source in the window — skip it entirely
  kSparse,  // materialize only the active sources' adjacency lists
  kDense,   // stream every edge chunk of the window (the default)
};

// Thresholds for the decision functions; embedded in EngineOptions as
// `frontier`. All defaults keep the engine's historical behavior (always
// push, always dense windows) so existing queries are bit-identical.
struct FrontierOptions {
  DirectionMode direction = DirectionMode::kPush;
  // Switch push -> pull when |frontier| + deg(frontier) exceeds
  // (n + m) / pull_den (Ligra's rule with its default denominator 20).
  uint64_t pull_den = 20;
  // Hysteresis: once pulling, return to push only when |frontier| drops
  // below n / push_den (Beamer's beta).
  uint64_t push_den = 20;
  // Enable per-window sparse scans in push mode.
  bool sparse_windows = false;
  // A window is scanned sparsely when
  // (active + deg(active)) * sparse_den < edges-in-window: the point
  // lookups must beat the full stream by a margin that covers their
  // per-page overhead.
  uint64_t sparse_den = 8;
  // Sparse index lists are kept only while the population is at most
  // range_size / sparse_list_den (the sparse<->dense conversion
  // threshold for Frontier and FrontierView).
  uint64_t sparse_list_den = 8;
};

// Pure per-superstep direction decision. `prev` feeds the hysteresis;
// callers pass kPush on the first superstep.
inline Direction ChooseDirection(Direction prev, uint64_t frontier_vertices,
                                 uint64_t frontier_degree,
                                 uint64_t num_vertices, uint64_t num_edges,
                                 const FrontierOptions& options) {
  if (frontier_vertices == 0) return Direction::kPush;
  if (prev == Direction::kPull) {
    const uint64_t den = std::max<uint64_t>(1, options.push_den);
    return frontier_vertices < num_vertices / den ? Direction::kPush
                                                  : Direction::kPull;
  }
  const uint64_t den = std::max<uint64_t>(1, options.pull_den);
  const uint64_t work = frontier_vertices + frontier_degree;
  return work > (num_vertices + num_edges) / den ? Direction::kPull
                                                 : Direction::kPush;
}

// Pure per-window density decision (push mode). `active` and
// `active_degree` describe the frontier restricted to the window;
// `window_edges` is the total record count of the window's edge chunks.
inline WindowMode ChooseWindowMode(uint64_t active, uint64_t active_degree,
                                   uint64_t window_edges,
                                   const FrontierOptions& options) {
  if (active == 0) return WindowMode::kSkip;
  if (!options.sparse_windows) return WindowMode::kDense;
  const uint64_t work = active + active_degree;
  return work * options.sparse_den < window_edges ? WindowMode::kSparse
                                                  : WindowMode::kDense;
}

// An owning frontier: dense bitmap always maintained, sorted index list
// while the population is within the sparse capacity. Add() is idempotent
// and automatically drops the list on overflow (the sparse -> dense
// switch). Not thread-safe for concurrent Add (Test is).
class Frontier {
 public:
  Frontier() = default;
  Frontier(uint64_t num_bits, uint64_t sparse_capacity) {
    Reset(num_bits, sparse_capacity);
  }

  void Reset(uint64_t num_bits, uint64_t sparse_capacity) {
    bits_.Resize(num_bits);
    bits_.ClearAll();
    num_bits_ = num_bits;
    sparse_capacity_ = sparse_capacity;
    sparse_.clear();
    has_sparse_ = true;
    sorted_ = true;
    size_ = 0;
  }

  void Add(uint64_t v) {
    if (!bits_.TestAndSet(v)) return;  // already present
    ++size_;
    if (!has_sparse_) return;
    if (sparse_.size() >= sparse_capacity_) {
      // Sparse -> dense: the list no longer pays for itself.
      has_sparse_ = false;
      sparse_.clear();
      sparse_.shrink_to_fit();
      return;
    }
    if (!sparse_.empty() && v < sparse_.back()) sorted_ = false;
    sparse_.push_back(v);
  }

  bool Test(uint64_t v) const { return bits_.Test(v); }
  uint64_t size() const { return size_; }
  uint64_t num_bits() const { return num_bits_; }
  FrontierRep rep() const {
    return has_sparse_ ? FrontierRep::kSparse : FrontierRep::kDense;
  }

  // Re-materializes the index list when the population fits (the
  // dense -> sparse conversion, e.g. after a frontier has collapsed).
  // Returns the representation in effect afterwards.
  FrontierRep RebuildSparse() {
    if (has_sparse_) return FrontierRep::kSparse;
    if (size_ > sparse_capacity_) return FrontierRep::kDense;
    sparse_.clear();
    bits_.ForEachSet([&](uint64_t v) { sparse_.push_back(v); });
    has_sparse_ = true;
    sorted_ = true;
    return FrontierRep::kSparse;
  }

  // Iterates active ids in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_sparse_) {
      if (!sorted_) {
        std::sort(sparse_.begin(), sparse_.end());
        sorted_ = true;
      }
      for (uint64_t v : sparse_) fn(v);
      return;
    }
    bits_.ForEachSet([&](uint64_t v) { fn(v); });
  }

 private:
  AtomicBitmap bits_;
  mutable std::vector<uint64_t> sparse_;
  uint64_t num_bits_ = 0;
  uint64_t sparse_capacity_ = 0;
  uint64_t size_ = 0;
  bool has_sparse_ = true;
  mutable bool sorted_ = true;
};

// A non-owning per-superstep snapshot of a machine's active bitmap with
// the range queries the scatter loop needs. Build() materializes the
// sorted index list only when the population is at most
// `sparse_capacity`; above that all queries fall back to the bitmap.
// The referenced bitmap must outlive the view and stay unmodified while
// the view is used (the engine's active set is stable during scatter).
class FrontierView {
 public:
  void Build(const AtomicBitmap& bits, uint64_t sparse_capacity) {
    bits_ = &bits;
    sparse_.clear();
    count_ = bits.CountSet();
    has_sparse_ = count_ <= sparse_capacity;
    if (has_sparse_) {
      sparse_.reserve(count_);
      bits.ForEachSet([&](uint64_t v) { sparse_.push_back(v); });
    }
  }

  FrontierRep rep() const {
    return has_sparse_ ? FrontierRep::kSparse : FrontierRep::kDense;
  }
  uint64_t count() const { return count_; }

  // Population of [lo, hi) — bit offsets into the underlying bitmap.
  uint64_t CountInRange(uint64_t lo, uint64_t hi) const {
    if (has_sparse_) {
      auto begin = std::lower_bound(sparse_.begin(), sparse_.end(), lo);
      auto end = std::lower_bound(begin, sparse_.end(), hi);
      return static_cast<uint64_t>(end - begin);
    }
    return bits_->CountSetInRange(lo, hi);
  }

  // Iterates active bit offsets in [lo, hi), ascending.
  template <typename Fn>
  void ForEachIn(uint64_t lo, uint64_t hi, Fn&& fn) const {
    if (has_sparse_) {
      auto begin = std::lower_bound(sparse_.begin(), sparse_.end(), lo);
      for (auto it = begin; it != sparse_.end() && *it < hi; ++it) fn(*it);
      return;
    }
    bits_->ForEachSet(lo, hi, [&](uint64_t v) { fn(v); });
  }

  // Sum of degree_of(bit) over active bits in [lo, hi) — the frontier
  // work estimate behind ChooseWindowMode. O(active in range).
  template <typename DegreeFn>
  uint64_t DegreeInRange(uint64_t lo, uint64_t hi,
                         DegreeFn&& degree_of) const {
    uint64_t sum = 0;
    ForEachIn(lo, hi, [&](uint64_t v) { sum += degree_of(v); });
    return sum;
  }

 private:
  const AtomicBitmap* bits_ = nullptr;
  std::vector<uint64_t> sparse_;
  uint64_t count_ = 0;
  bool has_sparse_ = false;
};

}  // namespace tgpp

#endif  // TGPP_ALGOS_FRONTIER_H_
