// PageRank as a one-walk neighborhood query (paper §2.2 and Fig 18).
//
// Partial adjacency list mode, k = 1: the scatter contributes
// pr/out_degree over every out-edge, the gather sums contributions, the
// apply recomputes pr = 0.15 + 0.85 * sum. Vertices with zero out-degree
// contribute nothing (matching the paper's example program).

#ifndef TGPP_ALGOS_PAGERANK_H_
#define TGPP_ALGOS_PAGERANK_H_

#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct PageRankAttr {
  double pr;
  uint64_t out_degree;
};

// Update value: the summed rank contribution.
using PageRankUpdate = double;

inline KWalkApp<PageRankAttr, PageRankUpdate> MakePageRankApp(
    const PartitionedGraph* pg, int iterations) {
  KWalkApp<PageRankAttr, PageRankUpdate> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;
  app.max_supersteps = iterations;

  app.init = [pg](VertexId vid, PageRankAttr& attr) {
    attr.pr = 1.0;
    attr.out_degree = pg->out_degree[vid];
    return true;  // every vertex is active every iteration
  };
  app.adj_scatter[1] = [](ScatterContext<PageRankAttr, PageRankUpdate>& ctx,
                          VertexId u, const PageRankAttr& attr,
                          std::span<const VertexId> adj) {
    if (attr.out_degree == 0) return;
    const double contribution = attr.pr / attr.out_degree;
    for (VertexId v : adj) ctx.Update(v, contribution);
  };
  app.vertex_gather = [](PageRankUpdate& acc, const PageRankUpdate& in) {
    acc += in;
  };
  app.vertex_apply = [](VertexId, PageRankAttr& attr,
                        const PageRankUpdate* update) {
    attr.pr = 0.15 + 0.85 * (update != nullptr ? *update : 0.0);
    return true;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_PAGERANK_H_
