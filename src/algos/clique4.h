// 4-clique counting: a three-walk neighborhood query, the appendix A.6
// "general subgraph matching" pattern beyond triangles.
//
// k = 3 (the complement of a maximal independent set of K4 has three
// vertices). Enumeration under the degree-order constraint u < v < w < x:
//   level 1: u marks neighbors v > u;
//   level 2: v marks, for each parent u, common neighbors w > v of
//            (u, v) — every (u, v, w) is a triangle;
//   level 3: w re-derives its triangles through the parent indexes
//            (GetParentList at levels 2 and 1, GetAdjList through the
//            ancestor windows — the A.6 relaxation) and counts
//            x > w in N(u) ∩ N(v) ∩ N(w) with an n-way intersection.
// Each 4-clique a<b<c<d is counted exactly once, at (u,v,w,x)=(a,b,c,d).
//
// Expects an undirected, deduplicated, loop-free graph.

#ifndef TGPP_ALGOS_CLIQUE4_H_
#define TGPP_ALGOS_CLIQUE4_H_

#include <algorithm>

#include "core/app.h"
#include "graph/csr.h"

namespace tgpp {

struct Clique4Attr {
  uint8_t unused;
};

inline KWalkApp<Clique4Attr, uint64_t> MakeFourCliqueApp() {
  KWalkApp<Clique4Attr, uint64_t> app;
  app.k = 3;
  app.mode = AdjMode::kFull;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = 1;

  app.init = [](VertexId, Clique4Attr&) { return true; };

  app.adj_scatter[1] = [](ScatterContext<Clique4Attr, uint64_t>& ctx,
                          VertexId u, const Clique4Attr&,
                          std::span<const VertexId> adj) {
    for (VertexId v : adj) {
      if (ctx.CheckPartialOrder(u, v)) ctx.Mark(v);
    }
  };

  app.adj_scatter[2] = [](ScatterContext<Clique4Attr, uint64_t>& ctx,
                          VertexId v, const Clique4Attr&,
                          std::span<const VertexId> adj) {
    for (VertexId u : ctx.GetParentList(1, v)) {
      ForEachCommonAbove(ctx.GetAdjList(u), adj, v,
                         [&](VertexId w) { ctx.Mark(w); });
    }
  };

  app.adj_scatter[3] = [](ScatterContext<Clique4Attr, uint64_t>& ctx,
                          VertexId w, const Clique4Attr&,
                          std::span<const VertexId> adj) {
    std::vector<VertexId> uv_common;
    for (VertexId v : ctx.GetParentList(2, w)) {
      const std::span<const VertexId> v_adj = ctx.GetAdjList(v);
      for (VertexId u : ctx.GetParentList(1, v)) {
        const std::span<const VertexId> u_adj = ctx.GetAdjList(u);
        // w was marked as a common neighbor of *some* (u', v); keep only
        // the parents u whose triangle (u, v, w) actually closes.
        if (!std::binary_search(u_adj.begin(), u_adj.end(), w)) continue;
        // x > w adjacent to all of u, v, w: 3-way sorted intersection.
        GetCommonNbrList(u_adj, v_adj, &uv_common);
        const uint64_t cliques =
            SortedIntersectionCountAbove(uv_common, adj, w);
        if (cliques > 0) ctx.AggregateAdd(cliques);
      }
    }
  };

  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) { acc += in; };
  app.vertex_apply = [](VertexId, Clique4Attr&, const uint64_t*) {
    return false;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_CLIQUE4_H_
