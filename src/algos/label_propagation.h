// Synchronous label propagation (community detection), derandomized
// (docs/ALGORITHMS.md).
//
// Classic LPA adopts the most frequent label among a vertex's neighbors,
// breaking ties randomly — both the frequency count and the tie-break
// are order-sensitive, which breaks bit-determinism on a distributed
// engine. This variant instead adopts the label of a pseudo-randomly
// chosen neighbor per round: every edge (u, v) draws the deterministic
// key Mix64(old_u, old_v, round) and v adopts the label carried by its
// minimum-key in-edge. The min-by-(key, label) combiner is associative
// and commutative, so results are bit-identical across machine counts,
// directions and window modes, and match ReferenceLabelProp exactly.
// Runs a fixed number of rounds (no convergence test — LPA label
// oscillation makes fixed rounds the standard choice for benchmarks).

#ifndef TGPP_ALGOS_LABEL_PROPAGATION_H_
#define TGPP_ALGOS_LABEL_PROPAGATION_H_

#include "algos/hashing.h"
#include "common/logging.h"
#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct LpAttr {
  uint64_t label;
  uint64_t round;  // rounds applied so far (drives termination)
};

// Wire update: the edge's draw key plus the label it carries. Gather
// keeps the (key, label)-lexicographic minimum.
struct LpUpdate {
  uint64_t key;
  uint64_t label;
};

// Deterministic per-round edge draw, hashed from ORIGINAL endpoint ids
// so the engine and the reference agree edge by edge.
inline uint64_t LpEdgeKey(uint64_t old_u, uint64_t old_v, uint64_t round) {
  return Mix64(old_u, old_v, round);
}

inline KWalkApp<LpAttr, LpUpdate> MakeLabelPropagationApp(
    const PartitionedGraph* pg, int rounds = 10) {
  TGPP_CHECK(rounds >= 1) << "label propagation needs >= 1 round";
  const uint64_t total = static_cast<uint64_t>(rounds);
  KWalkApp<LpAttr, LpUpdate> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;  // every vertex adopts (or
                                             // keeps) a label each round
  app.max_supersteps = rounds + 1;

  app.init = [pg](VertexId vid, LpAttr& attr) {
    attr.label = pg->new_to_old[vid];
    attr.round = 0;
    return true;
  };
  app.adj_scatter[1] = [pg](ScatterContext<LpAttr, LpUpdate>& ctx,
                            VertexId u, const LpAttr& attr,
                            std::span<const VertexId> adj) {
    const uint64_t t = static_cast<uint64_t>(ctx.superstep());
    const uint64_t old_u = pg->new_to_old[u];
    for (VertexId v : adj) {
      ctx.Update(v, {LpEdgeKey(old_u, pg->new_to_old[v], t), attr.label});
    }
  };
  app.vertex_gather = [](LpUpdate& acc, const LpUpdate& in) {
    if (in.key < acc.key || (in.key == acc.key && in.label < acc.label)) {
      acc = in;
    }
  };
  app.vertex_apply = [total](VertexId, LpAttr& attr,
                             const LpUpdate* update) {
    if (update != nullptr) attr.label = update->label;
    return ++attr.round < total;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_LABEL_PROPAGATION_H_
