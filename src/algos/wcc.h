// Weakly connected components via minimum-label propagation, plus an
// Afforest-style sampled variant (MakeWccSampledApp) that runs a few
// cheap neighbor-sampling rounds before falling back to full
// propagation (docs/ALGORITHMS.md).
//
// Expects the graph to contain both directions of every edge (run
// MakeUndirected before loading), as is standard for WCC on directed
// inputs.

#ifndef TGPP_ALGOS_WCC_H_
#define TGPP_ALGOS_WCC_H_

#include <algorithm>

#include "common/logging.h"
#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct WccAttr {
  uint64_t label;
};

inline KWalkApp<WccAttr, uint64_t> MakeWccApp(const PartitionedGraph* pg) {
  KWalkApp<WccAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  // Labels are ORIGINAL vertex IDs so that component labels (and the
  // propagation schedule) are independent of the partitioner's
  // renumbering — each component converges to its minimum original ID.
  app.init = [pg](VertexId vid, WccAttr& attr) {
    attr.label = pg->new_to_old[vid];
    return true;
  };
  app.adj_scatter[1] = [](ScatterContext<WccAttr, uint64_t>& ctx, VertexId,
                          const WccAttr& attr,
                          std::span<const VertexId> adj) {
    for (VertexId v : adj) ctx.Update(v, attr.label);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, WccAttr& attr, const uint64_t* update) {
    if (update != nullptr && *update < attr.label) {
      attr.label = *update;
      return true;
    }
    return false;
  };
  return app;
}

// --- Afforest-style sampled WCC -------------------------------------------

struct WccSampledAttr {
  uint64_t label;
  uint64_t step;  // supersteps this vertex has applied (drives the
                  // one-shot reactivation at the end of sampling)
};

// Sampling-first WCC in the spirit of Afforest (Sutton et al.): for the
// first `sample_rounds` supersteps each scatter record only broadcasts
// the label to its first `sample_width` neighbors. Most vertices join
// the giant component's label tree during these cheap rounds, so the
// full-adjacency rounds that follow start from a mostly-converged state
// and the frontier (and update traffic) collapses quickly. At the end of
// sampling every vertex reactivates once so no component is left
// stranded on an unsampled edge. The fixed point is the same min-label
// convergence as MakeWccApp, so results are bit-identical to it and to
// ReferenceWcc — only the schedule (and the bytes moved) differ.
inline KWalkApp<WccSampledAttr, uint64_t> MakeWccSampledApp(
    const PartitionedGraph* pg, int sample_rounds = 2,
    size_t sample_width = 2) {
  TGPP_CHECK(sample_rounds >= 1) << "wcc-sampled needs >= 1 sampling round";
  const uint64_t rounds = static_cast<uint64_t>(sample_rounds);
  KWalkApp<WccSampledAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;  // step counter must tick on
                                             // every vertex each superstep
  app.max_supersteps =
      static_cast<int>(pg->num_vertices) + sample_rounds + 2;

  app.init = [pg](VertexId vid, WccSampledAttr& attr) {
    attr.label = pg->new_to_old[vid];
    attr.step = 0;
    return true;
  };
  app.adj_scatter[1] = [rounds, sample_width](
                           ScatterContext<WccSampledAttr, uint64_t>& ctx,
                           VertexId, const WccSampledAttr& attr,
                           std::span<const VertexId> adj) {
    if (static_cast<uint64_t>(ctx.superstep()) < rounds) {
      // Sampling round: only the first neighbors of this adjacency
      // fragment hear the label. Fragments are per edge chunk, so a
      // high-degree vertex still samples a handful per chunk.
      adj = adj.first(std::min(sample_width, adj.size()));
    }
    for (VertexId v : adj) ctx.Update(v, attr.label);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [rounds](VertexId, WccSampledAttr& attr,
                              const uint64_t* update) {
    const uint64_t s = attr.step++;
    const bool improved = update != nullptr && *update < attr.label;
    if (improved) attr.label = *update;
    // Every vertex stays active through the sampling supersteps (they
    // are cheap by construction) and through superstep `rounds`, the
    // one full-adjacency broadcast; afterwards the classic frontier
    // rule takes over. Without the `s < rounds` term a draining
    // frontier could end the query mid-sampling, before the full round
    // has stitched unsampled edges together.
    return improved || s < rounds;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_WCC_H_
