// Weakly connected components via minimum-label propagation.
//
// Expects the graph to contain both directions of every edge (run
// MakeUndirected before loading), as is standard for WCC on directed
// inputs.

#ifndef TGPP_ALGOS_WCC_H_
#define TGPP_ALGOS_WCC_H_

#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct WccAttr {
  uint64_t label;
};

inline KWalkApp<WccAttr, uint64_t> MakeWccApp(const PartitionedGraph* pg) {
  KWalkApp<WccAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  // Labels are ORIGINAL vertex IDs so that component labels (and the
  // propagation schedule) are independent of the partitioner's
  // renumbering — each component converges to its minimum original ID.
  app.init = [pg](VertexId vid, WccAttr& attr) {
    attr.label = pg->new_to_old[vid];
    return true;
  };
  app.adj_scatter[1] = [](ScatterContext<WccAttr, uint64_t>& ctx, VertexId,
                          const WccAttr& attr,
                          std::span<const VertexId> adj) {
    for (VertexId v : adj) ctx.Update(v, attr.label);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, WccAttr& attr, const uint64_t* update) {
    if (update != nullptr && *update < attr.label) {
      attr.label = *update;
      return true;
    }
    return false;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_WCC_H_
