// Maximal independent set via derandomized Luby rounds
// (docs/ALGORITHMS.md).
//
// Each Luby round takes two supersteps. In the priority superstep every
// undecided vertex broadcasts its round priority (a hash of its ORIGINAL
// id and the round number); a vertex that beats the minimum it hears —
// or hears nothing — joins the set. In the knockout superstep the new
// members broadcast once more and their undecided neighbors drop out.
// Hash priorities replace Luby's random draws, so the round structure
// (and the resulting set) is a pure function of the graph: bit-identical
// across machine counts, window modes, and to ReferenceMis.
//
// Requires a symmetric graph without self-loops (run DeduplicateEdges +
// MakeUndirected before loading). Priorities pack the original id into
// the low bits to break hash collisions, which caps supported graphs at
// 2^24 vertices (checked in the factory).

#ifndef TGPP_ALGOS_MIS_H_
#define TGPP_ALGOS_MIS_H_

#include "algos/hashing.h"
#include "common/logging.h"
#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct MisAttr {
  uint64_t state;  // kMisUndecided / kMisInNew / kMisIn / kMisOut
  uint64_t step;   // supersteps applied (parity selects the phase)
};

inline constexpr uint64_t kMisUndecided = 0;
inline constexpr uint64_t kMisInNew = 1;  // joined this round, must knock out
inline constexpr uint64_t kMisIn = 2;     // final: in the MIS
inline constexpr uint64_t kMisOut = 3;    // final: dominated by a member

// Distinct per-round priority: hash in the high 40 bits, ORIGINAL id in
// the low 24 as a collision-proof tie-break.
inline uint64_t MisPriority(uint64_t old_id, uint64_t round) {
  return (Mix64(old_id, round) << 24) | (old_id & 0xFFFFFFull);
}

inline KWalkApp<MisAttr, uint64_t> MakeMisApp(const PartitionedGraph* pg) {
  TGPP_CHECK(pg->num_vertices < (1ull << 24))
      << "MIS priorities reserve 24 bits for the vertex id";
  KWalkApp<MisAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;  // phase parity must tick on
                                             // every vertex
  app.max_supersteps = static_cast<int>(2 * pg->num_vertices) + 8;

  app.init = [](VertexId, MisAttr& attr) {
    attr.state = kMisUndecided;
    attr.step = 0;
    return true;  // round 0's priority superstep covers all vertices
  };
  app.adj_scatter[1] = [pg](ScatterContext<MisAttr, uint64_t>& ctx,
                            VertexId u, const MisAttr& attr,
                            std::span<const VertexId> adj) {
    const int t = ctx.superstep();
    if (t % 2 == 0) {
      if (attr.state != kMisUndecided) return;
      const uint64_t key =
          MisPriority(pg->new_to_old[u], static_cast<uint64_t>(t) / 2);
      for (VertexId v : adj) ctx.Update(v, key);
    } else {
      if (attr.state != kMisInNew) return;
      for (VertexId v : adj) ctx.Update(v, 1);  // knockout ping
    }
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [pg](VertexId vid, MisAttr& attr,
                          const uint64_t* update) {
    const uint64_t s = attr.step++;
    if (s % 2 == 0) {
      // Priority phase: join if no undecided neighbor outranks us.
      if (attr.state != kMisUndecided) return false;
      const uint64_t mine = MisPriority(pg->new_to_old[vid], s / 2);
      if (update == nullptr || *update > mine) {
        attr.state = kMisInNew;
        return true;  // broadcast the knockout next superstep
      }
      return false;
    }
    // Knockout phase.
    if (attr.state == kMisInNew) {
      attr.state = kMisIn;
      return false;
    }
    if (attr.state != kMisUndecided) return false;
    if (update != nullptr) {
      attr.state = kMisOut;  // a neighbor joined this round
      return false;
    }
    return true;  // survivor: contend in the next priority phase
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_MIS_H_
