// Triangle counting as a two-walk neighborhood query (paper §2.2, Fig 19).
//
// Full adjacency list mode, k = 2. Level 1 (EnumOneHopNbr) marks each
// neighbor v of u with u < v — the degree-order partial-order constraint
// that enumerates every triangle exactly once and keeps intersections
// short under BBP's descending-degree renumbering. Level 2
// (FindTriangles) intersects N(u) (still resident in the level-1 window,
// reached through GetParentList/GetAdjList) with N(v), counting common
// neighbors w with v < w. Expects an undirected, deduplicated graph.

#ifndef TGPP_ALGOS_TRIANGLE_COUNTING_H_
#define TGPP_ALGOS_TRIANGLE_COUNTING_H_

#include "core/app.h"
#include "graph/csr.h"
#include "partition/partitioner.h"

namespace tgpp {

struct TcAttr {
  uint8_t unused;  // TC keeps no per-vertex state; the count is aggregated
};

inline KWalkApp<TcAttr, uint64_t> MakeTriangleCountingApp() {
  KWalkApp<TcAttr, uint64_t> app;
  app.k = 2;
  app.mode = AdjMode::kFull;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = 1;

  app.init = [](VertexId, TcAttr&) { return true; };

  // Level 1: mark one-hop neighbors satisfying the partial order.
  app.adj_scatter[1] = [](ScatterContext<TcAttr, uint64_t>& ctx, VertexId u,
                          const TcAttr&, std::span<const VertexId> adj) {
    for (VertexId v : adj) {
      if (ctx.CheckPartialOrder(u, v)) ctx.Mark(v);
    }
  };

  // Level 2: for each parent u of v, count common neighbors w with v < w.
  app.adj_scatter[2] = [](ScatterContext<TcAttr, uint64_t>& ctx, VertexId v,
                          const TcAttr&, std::span<const VertexId> adj) {
    for (VertexId u : ctx.GetParentList(v)) {
      const uint64_t triangles =
          SortedIntersectionCountAbove(ctx.GetAdjList(u), adj, v);
      if (triangles > 0) ctx.AggregateAdd(triangles);
    }
  };

  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) { acc += in; };
  app.vertex_apply = [](VertexId, TcAttr&, const uint64_t*) {
    return false;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_TRIANGLE_COUNTING_H_
