// Single-threaded in-memory reference implementations of every query in
// the catalog (docs/ALGORITHMS.md).
//
// These are the ground truth that unit/property tests validate the NWSM
// engine and every baseline system against. They operate in the ORIGINAL
// vertex-ID space. Derandomized references (weighted SSSP, label
// propagation, MIS) share their hash functions with the kernels
// (algos/hashing.h and the kernel headers) so engine results match bit
// for bit.

#ifndef TGPP_ALGOS_REFERENCE_H_
#define TGPP_ALGOS_REFERENCE_H_

#include <vector>

#include "graph/edge_list.h"

namespace tgpp {

// PageRank with damping 0.85, initial rank 1.0, `iterations` synchronous
// iterations; rank = 0.15 + 0.85 * sum(in-contributions).
std::vector<double> ReferencePageRank(const EdgeList& graph, int iterations);

// Unit-weight shortest path distances from `source`
// (kInfiniteDistance == UINT64_MAX when unreachable).
std::vector<uint64_t> ReferenceSssp(const EdgeList& graph, VertexId source);

// Connected-component labels: label(v) = min vertex id in v's weakly
// connected component. Expects an undirected edge list.
std::vector<uint64_t> ReferenceWcc(const EdgeList& graph);

// Triangle count of an undirected, deduplicated, loop-free graph.
uint64_t ReferenceTriangleCount(const EdgeList& graph);

// Per-vertex triangle counts (same preconditions).
std::vector<uint64_t> ReferencePerVertexTriangles(const EdgeList& graph);

// Local clustering coefficients from per-vertex triangle counts.
std::vector<double> ReferenceLcc(const EdgeList& graph);

// 4-clique count of an undirected, deduplicated, loop-free graph.
uint64_t ReferenceFourCliqueCount(const EdgeList& graph);

// BFS levels from `source` (kBfsUnreached == UINT64_MAX when
// unreachable). Identical to ReferenceSssp; kept separate so the BFS
// kernel validates against an independently-named ground truth.
std::vector<uint64_t> ReferenceBfs(const EdgeList& graph, VertexId source);

// Dijkstra over the hashed integer weights SsspEdgeWeight(u, v,
// max_weight) — the ground truth for delta-stepping SSSP.
std::vector<uint64_t> ReferenceSsspWeighted(const EdgeList& graph,
                                            VertexId source,
                                            uint64_t max_weight);

// Coreness of every vertex by iterative peeling. Expects an undirected,
// deduplicated, loop-free graph.
std::vector<uint64_t> ReferenceKCore(const EdgeList& graph);

// Derandomized synchronous label propagation: per round t, v adopts the
// label carried by its minimum-LpEdgeKey in-edge (ties broken by smaller
// label). Expects an undirected graph.
std::vector<uint64_t> ReferenceLabelProp(const EdgeList& graph, int rounds);

// Derandomized Luby MIS over MisPriority rounds: 1 = in the set,
// 0 = dominated. Expects an undirected, deduplicated, loop-free graph.
std::vector<uint8_t> ReferenceMis(const EdgeList& graph);

}  // namespace tgpp

#endif  // TGPP_ALGOS_REFERENCE_H_
