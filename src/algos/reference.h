// Single-threaded in-memory reference implementations of the five queries.
//
// These are the ground truth that unit/property tests validate the NWSM
// engine and every baseline system against. They operate in the ORIGINAL
// vertex-ID space.

#ifndef TGPP_ALGOS_REFERENCE_H_
#define TGPP_ALGOS_REFERENCE_H_

#include <vector>

#include "graph/edge_list.h"

namespace tgpp {

// PageRank with damping 0.85, initial rank 1.0, `iterations` synchronous
// iterations; rank = 0.15 + 0.85 * sum(in-contributions).
std::vector<double> ReferencePageRank(const EdgeList& graph, int iterations);

// Unit-weight shortest path distances from `source`
// (kInfiniteDistance == UINT64_MAX when unreachable).
std::vector<uint64_t> ReferenceSssp(const EdgeList& graph, VertexId source);

// Connected-component labels: label(v) = min vertex id in v's weakly
// connected component. Expects an undirected edge list.
std::vector<uint64_t> ReferenceWcc(const EdgeList& graph);

// Triangle count of an undirected, deduplicated, loop-free graph.
uint64_t ReferenceTriangleCount(const EdgeList& graph);

// Per-vertex triangle counts (same preconditions).
std::vector<uint64_t> ReferencePerVertexTriangles(const EdgeList& graph);

// Local clustering coefficients from per-vertex triangle counts.
std::vector<double> ReferenceLcc(const EdgeList& graph);

// 4-clique count of an undirected, deduplicated, loop-free graph.
uint64_t ReferenceFourCliqueCount(const EdgeList& graph);

}  // namespace tgpp

#endif  // TGPP_ALGOS_REFERENCE_H_
