// Single-source shortest paths (unit edge weights) as a one-walk query.
//
// Frontier-driven: only vertices whose distance improved are active in the
// next superstep; the engine's chunk-level frontier skipping means quiet
// regions of the graph cost no page reads (paper §5.3, group1 analysis).

#ifndef TGPP_ALGOS_SSSP_H_
#define TGPP_ALGOS_SSSP_H_

#include <limits>

#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct SsspAttr {
  uint64_t dist;
};

inline constexpr uint64_t kInfiniteDistance =
    std::numeric_limits<uint64_t>::max();

// `source_old_id` is in the ORIGINAL (pre-renumbering) ID space.
inline KWalkApp<SsspAttr, uint64_t> MakeSsspApp(const PartitionedGraph* pg,
                                                VertexId source_old_id) {
  const VertexId source = pg->old_to_new[source_old_id];
  KWalkApp<SsspAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  app.init = [source](VertexId vid, SsspAttr& attr) {
    attr.dist = (vid == source) ? 0 : kInfiniteDistance;
    return vid == source;
  };
  app.adj_scatter[1] = [](ScatterContext<SsspAttr, uint64_t>& ctx, VertexId,
                          const SsspAttr& attr,
                          std::span<const VertexId> adj) {
    if (attr.dist == kInfiniteDistance) return;
    const uint64_t candidate = attr.dist + 1;
    for (VertexId v : adj) ctx.Update(v, candidate);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, SsspAttr& attr, const uint64_t* update) {
    if (update != nullptr && *update < attr.dist) {
      attr.dist = *update;
      return true;
    }
    return false;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_SSSP_H_
