// Single-source shortest paths as a one-walk query: the classic
// unit-weight Bellman-Ford style kernel (MakeSsspApp) and a
// work-efficient delta-stepping variant over hashed integer weights
// (MakeSsspDeltaApp; docs/ALGORITHMS.md).
//
// Frontier-driven: only vertices whose distance improved are active in the
// next superstep; the engine's chunk-level frontier skipping means quiet
// regions of the graph cost no page reads (paper §5.3, group1 analysis).

#ifndef TGPP_ALGOS_SSSP_H_
#define TGPP_ALGOS_SSSP_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "algos/hashing.h"
#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct SsspAttr {
  uint64_t dist;
};

inline constexpr uint64_t kInfiniteDistance =
    std::numeric_limits<uint64_t>::max();

// `source_old_id` is in the ORIGINAL (pre-renumbering) ID space.
inline KWalkApp<SsspAttr, uint64_t> MakeSsspApp(const PartitionedGraph* pg,
                                                VertexId source_old_id) {
  const VertexId source = pg->old_to_new[source_old_id];
  KWalkApp<SsspAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  app.init = [source](VertexId vid, SsspAttr& attr) {
    attr.dist = (vid == source) ? 0 : kInfiniteDistance;
    return vid == source;
  };
  app.adj_scatter[1] = [](ScatterContext<SsspAttr, uint64_t>& ctx, VertexId,
                          const SsspAttr& attr,
                          std::span<const VertexId> adj) {
    if (attr.dist == kInfiniteDistance) return;
    const uint64_t candidate = attr.dist + 1;
    for (VertexId v : adj) ctx.Update(v, candidate);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, SsspAttr& attr, const uint64_t* update) {
    if (update != nullptr && *update < attr.dist) {
      attr.dist = *update;
      return true;
    }
    return false;
  };
  return app;
}

// --- delta-stepping SSSP over hashed weights ------------------------------

// Deterministic integer edge weight in [1, max_weight], hashed from the
// ORIGINAL endpoint ids (algos/hashing.h) so the engine and the Dijkstra
// reference (ReferenceSsspWeighted) agree on every edge without storing
// weights.
inline uint64_t SsspEdgeWeight(VertexId old_u, VertexId old_v,
                               uint64_t max_weight) {
  return 1 + Mix64(old_u, old_v) % std::max<uint64_t>(1, max_weight);
}

struct SsspDeltaAttr {
  uint64_t dist;       // best known distance
  uint64_t announced;  // distance last broadcast (kInfiniteDistance = never)
};

// Delta-stepping (Meyer/Sanders) on the NWSM engine: vertices relax
// eagerly within the current bucket [0, limit) and *park* improvements
// beyond it. When the frontier drains, on_quiescent advances the bucket
// limit — jumping over empty buckets to the minimum parked distance —
// and the parked vertices reactivate in the next apply pass. With
// delta = 1 this is bucketed Dijkstra; large delta degenerates toward
// Bellman-Ford. Results are the exact shortest-path distances for any
// delta, so all variants (and the reference) match bit for bit.
//
// Scheduling state (bucket limit, parked count) lives in shared atomics
// outside the vertex attributes: do not combine with
// EngineOptions::checkpoint_every (docs/ALGORITHMS.md).
inline KWalkApp<SsspDeltaAttr, uint64_t> MakeSsspDeltaApp(
    const PartitionedGraph* pg, VertexId source_old_id, uint64_t delta = 4,
    uint64_t max_weight = 8) {
  struct DeltaState {
    std::atomic<uint64_t> limit;     // current bucket upper bound
    std::atomic<uint64_t> parked;    // vertices holding an unannounced
                                     // improvement >= limit
    std::atomic<uint64_t> next_min;  // min parked distance since the
                                     // last bucket advance
    uint64_t delta = 1;
  };
  auto st = std::make_shared<DeltaState>();
  st->delta = std::max<uint64_t>(1, delta);
  st->limit.store(st->delta, std::memory_order_relaxed);
  st->parked.store(0, std::memory_order_relaxed);
  st->next_min.store(kInfiniteDistance, std::memory_order_relaxed);

  const VertexId source = pg->old_to_new[source_old_id];
  KWalkApp<SsspDeltaAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;  // parked vertices reactivate
                                             // on bucket advances
  const uint64_t step_bound =
      2 * pg->num_vertices +
      (pg->num_vertices * std::max<uint64_t>(1, max_weight)) / st->delta +
      16;
  app.max_supersteps = static_cast<int>(
      std::min<uint64_t>(step_bound, std::numeric_limits<int>::max() / 2));

  app.init = [source](VertexId vid, SsspDeltaAttr& attr) {
    attr.dist = (vid == source) ? 0 : kInfiniteDistance;
    attr.announced = attr.dist;
    return vid == source;
  };
  app.adj_scatter[1] = [pg, max_weight](
                           ScatterContext<SsspDeltaAttr, uint64_t>& ctx,
                           VertexId u, const SsspDeltaAttr& attr,
                           std::span<const VertexId> adj) {
    if (attr.dist == kInfiniteDistance) return;
    const VertexId old_u = pg->new_to_old[u];
    for (VertexId v : adj) {
      ctx.Update(v, attr.dist +
                        SsspEdgeWeight(old_u, pg->new_to_old[v], max_weight));
    }
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [st](VertexId, SsspDeltaAttr& attr,
                          const uint64_t* update) {
    const bool was_parked = attr.dist < attr.announced;
    if (update != nullptr && *update < attr.dist) attr.dist = *update;
    bool pending = attr.dist < attr.announced;
    bool activate = false;
    if (pending &&
        attr.dist < st->limit.load(std::memory_order_relaxed)) {
      attr.announced = attr.dist;
      activate = true;
      pending = false;
    }
    if (pending) {
      uint64_t cur = st->next_min.load(std::memory_order_relaxed);
      while (attr.dist < cur &&
             !st->next_min.compare_exchange_weak(
                 cur, attr.dist, std::memory_order_relaxed)) {
      }
      if (!was_parked) st->parked.fetch_add(1, std::memory_order_relaxed);
    } else if (was_parked) {
      st->parked.fetch_sub(1, std::memory_order_relaxed);
    }
    return activate;
  };
  app.on_quiescent = [st](int) {
    if (st->parked.load(std::memory_order_relaxed) == 0) return false;
    const uint64_t min_parked =
        st->next_min.exchange(kInfiniteDistance, std::memory_order_relaxed);
    const uint64_t old_limit = st->limit.load(std::memory_order_relaxed);
    uint64_t next = old_limit + st->delta;  // progress guarantee
    if (min_parked != kInfiniteDistance) {
      // Jump empty buckets: straight to the one holding the minimum
      // parked distance (stale minima fall back to the +delta step).
      next = std::max(next, (min_parked / st->delta + 1) * st->delta);
    }
    st->limit.store(next, std::memory_order_relaxed);
    return true;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_SSSP_H_
