// k-core decomposition (coreness of every vertex) by staged synchronous
// peeling (docs/ALGORITHMS.md).
//
// Phase k repeatedly removes vertices whose residual degree is < k; a
// removed vertex broadcasts one decrement to each neighbor, then leaves
// the computation. When a phase reaches a fixed point (frontier drains),
// on_quiescent bumps k and the next apply pass — apply runs on all
// vertices — starts the next peel. A vertex removed during phase k has
// coreness k-1. The peeling order within a phase does not affect
// coreness (classic k-core property) and all messages are commutative
// +1 decrements, so results are bit-identical across machine counts and
// window modes.
//
// Expects a symmetric, deduplicated, self-loop-free graph (run
// DeduplicateEdges + MakeUndirected before loading): residual degree
// tracking assumes out-degree == in-degree == #neighbors.
//
// Uses shared scheduling atomics (current k, alive count) outside vertex
// attributes: do not combine with EngineOptions::checkpoint_every.

#ifndef TGPP_ALGOS_KCORE_H_
#define TGPP_ALGOS_KCORE_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct KcoreAttr {
  uint64_t degree;  // residual degree among not-yet-removed vertices
  uint64_t core;    // coreness, valid once state != kKcoreAlive
  uint64_t state;   // kKcoreAlive / kKcoreJustRemoved / kKcoreGone
};

inline constexpr uint64_t kKcoreAlive = 0;
inline constexpr uint64_t kKcoreJustRemoved = 1;  // broadcasts this superstep
inline constexpr uint64_t kKcoreGone = 2;

inline KWalkApp<KcoreAttr, uint64_t> MakeKcoreApp(
    const PartitionedGraph* pg) {
  struct KcoreState {
    std::atomic<uint64_t> k{1};    // current peeling phase
    std::atomic<uint64_t> alive{0};
  };
  auto st = std::make_shared<KcoreState>();
  st->alive.store(pg->num_vertices, std::memory_order_relaxed);

  KWalkApp<KcoreAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kAllVertices;  // phase starts re-examine
                                             // every alive vertex
  const uint64_t step_bound = 3 * pg->num_vertices + 64;
  app.max_supersteps = static_cast<int>(
      std::min<uint64_t>(step_bound, std::numeric_limits<int>::max() / 2));

  app.init = [pg](VertexId vid, KcoreAttr& attr) {
    attr.degree = pg->out_degree[vid];
    attr.core = 0;
    attr.state = kKcoreAlive;
    return false;  // the first apply pass performs the k=1 peel
  };
  // A just-removed vertex sends one decrement per neighbor; the sum
  // combiner collapses them into per-target removal counts.
  app.adj_scatter[1] = [](ScatterContext<KcoreAttr, uint64_t>& ctx, VertexId,
                          const KcoreAttr& attr,
                          std::span<const VertexId> adj) {
    if (attr.state != kKcoreJustRemoved) return;
    for (VertexId v : adj) ctx.Update(v, 1);
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) { acc += in; };
  app.vertex_apply = [st](VertexId, KcoreAttr& attr,
                          const uint64_t* update) {
    if (attr.state == kKcoreGone) return false;
    if (attr.state == kKcoreJustRemoved) {
      // Broadcast happened in the scatter phase of this superstep.
      attr.state = kKcoreGone;
      return false;
    }
    if (update != nullptr) attr.degree -= std::min(*update, attr.degree);
    const uint64_t k = st->k.load(std::memory_order_relaxed);
    if (attr.degree < k) {
      attr.state = kKcoreJustRemoved;
      attr.core = k - 1;
      st->alive.fetch_sub(1, std::memory_order_relaxed);
      return true;  // activate to broadcast decrements next superstep
    }
    return false;
  };
  app.on_quiescent = [st](int) {
    if (st->alive.load(std::memory_order_relaxed) == 0) return false;
    st->k.fetch_add(1, std::memory_order_relaxed);
    return true;  // start the next peeling phase
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_KCORE_H_
