#include "algos/reference.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "graph/csr.h"

namespace tgpp {

std::vector<double> ReferencePageRank(const EdgeList& graph,
                                      int iterations) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  std::vector<double> pr(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      const auto adj = csr.Neighbors(u);
      if (adj.empty()) continue;
      const double contribution = pr[u] / static_cast<double>(adj.size());
      for (VertexId v : adj) next[v] += contribution;
    }
    for (VertexId v = 0; v < n; ++v) pr[v] = 0.15 + 0.85 * next[v];
  }
  return pr;
}

std::vector<uint64_t> ReferenceSssp(const EdgeList& graph, VertexId source) {
  const Csr csr = Csr::Build(graph);
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> dist(graph.num_vertices, kInf);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : csr.Neighbors(u)) {
      if (dist[u] + 1 < dist[v]) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ReferenceWcc(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  constexpr uint64_t kUnset = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> label(n, kUnset);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (label[root] != kUnset) continue;
    label[root] = root;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : csr.Neighbors(u)) {
        if (label[v] == kUnset) {
          label[v] = root;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

std::vector<uint64_t> ReferencePerVertexTriangles(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph, /*sort_neighbors=*/true);
  const uint64_t n = graph.num_vertices;
  std::vector<uint64_t> triangles(n, 0);
  std::vector<VertexId> common;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : csr.Neighbors(u)) {
      if (v <= u) continue;
      common.clear();
      SortedIntersection(csr.Neighbors(u), csr.Neighbors(v), &common);
      for (VertexId w : common) {
        if (w <= v) continue;
        ++triangles[u];
        ++triangles[v];
        ++triangles[w];
      }
    }
  }
  return triangles;
}

uint64_t ReferenceTriangleCount(const EdgeList& graph) {
  const std::vector<uint64_t> per_vertex =
      ReferencePerVertexTriangles(graph);
  uint64_t total = 0;
  for (uint64_t t : per_vertex) total += t;
  return total / 3;
}

uint64_t ReferenceFourCliqueCount(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph, /*sort_neighbors=*/true);
  uint64_t count = 0;
  std::vector<VertexId> common;
  for (VertexId u = 0; u < graph.num_vertices; ++u) {
    for (VertexId v : csr.Neighbors(u)) {
      if (v <= u) continue;
      common.clear();
      SortedIntersection(csr.Neighbors(u), csr.Neighbors(v), &common);
      // Every pair (w < x) of common neighbors above v that is itself an
      // edge closes a 4-clique u < v < w < x.
      for (size_t i = 0; i < common.size(); ++i) {
        const VertexId w = common[i];
        if (w <= v) continue;
        for (size_t j = i + 1; j < common.size(); ++j) {
          const VertexId x = common[j];
          const auto w_adj = csr.Neighbors(w);
          if (std::binary_search(w_adj.begin(), w_adj.end(), x)) ++count;
        }
      }
    }
  }
  return count;
}

std::vector<double> ReferenceLcc(const EdgeList& graph) {
  const std::vector<uint64_t> triangles =
      ReferencePerVertexTriangles(graph);
  const Csr csr = Csr::Build(graph);
  std::vector<double> lcc(graph.num_vertices, 0.0);
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    const uint64_t degree = csr.Degree(v);
    if (degree >= 2) {
      lcc[v] = 2.0 * static_cast<double>(triangles[v]) /
               (static_cast<double>(degree) *
                static_cast<double>(degree - 1));
    }
  }
  return lcc;
}

}  // namespace tgpp
