#include "algos/reference.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

// Kernel headers are included for the shared deterministic hash helpers
// (SsspEdgeWeight, LpEdgeKey, MisPriority) so reference and engine use
// the exact same pseudo-random draws.
#include "algos/label_propagation.h"
#include "algos/mis.h"
#include "algos/sssp.h"
#include "graph/csr.h"

namespace tgpp {

std::vector<double> ReferencePageRank(const EdgeList& graph,
                                      int iterations) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  std::vector<double> pr(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      const auto adj = csr.Neighbors(u);
      if (adj.empty()) continue;
      const double contribution = pr[u] / static_cast<double>(adj.size());
      for (VertexId v : adj) next[v] += contribution;
    }
    for (VertexId v = 0; v < n; ++v) pr[v] = 0.15 + 0.85 * next[v];
  }
  return pr;
}

std::vector<uint64_t> ReferenceSssp(const EdgeList& graph, VertexId source) {
  const Csr csr = Csr::Build(graph);
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> dist(graph.num_vertices, kInf);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : csr.Neighbors(u)) {
      if (dist[u] + 1 < dist[v]) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ReferenceWcc(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  constexpr uint64_t kUnset = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> label(n, kUnset);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (label[root] != kUnset) continue;
    label[root] = root;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : csr.Neighbors(u)) {
        if (label[v] == kUnset) {
          label[v] = root;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

std::vector<uint64_t> ReferencePerVertexTriangles(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph, /*sort_neighbors=*/true);
  const uint64_t n = graph.num_vertices;
  std::vector<uint64_t> triangles(n, 0);
  std::vector<VertexId> common;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : csr.Neighbors(u)) {
      if (v <= u) continue;
      common.clear();
      SortedIntersection(csr.Neighbors(u), csr.Neighbors(v), &common);
      for (VertexId w : common) {
        if (w <= v) continue;
        ++triangles[u];
        ++triangles[v];
        ++triangles[w];
      }
    }
  }
  return triangles;
}

uint64_t ReferenceTriangleCount(const EdgeList& graph) {
  const std::vector<uint64_t> per_vertex =
      ReferencePerVertexTriangles(graph);
  uint64_t total = 0;
  for (uint64_t t : per_vertex) total += t;
  return total / 3;
}

uint64_t ReferenceFourCliqueCount(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph, /*sort_neighbors=*/true);
  uint64_t count = 0;
  std::vector<VertexId> common;
  for (VertexId u = 0; u < graph.num_vertices; ++u) {
    for (VertexId v : csr.Neighbors(u)) {
      if (v <= u) continue;
      common.clear();
      SortedIntersection(csr.Neighbors(u), csr.Neighbors(v), &common);
      // Every pair (w < x) of common neighbors above v that is itself an
      // edge closes a 4-clique u < v < w < x.
      for (size_t i = 0; i < common.size(); ++i) {
        const VertexId w = common[i];
        if (w <= v) continue;
        for (size_t j = i + 1; j < common.size(); ++j) {
          const VertexId x = common[j];
          const auto w_adj = csr.Neighbors(w);
          if (std::binary_search(w_adj.begin(), w_adj.end(), x)) ++count;
        }
      }
    }
  }
  return count;
}

std::vector<uint64_t> ReferenceBfs(const EdgeList& graph, VertexId source) {
  const Csr csr = Csr::Build(graph);
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> dist(graph.num_vertices, kInf);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : csr.Neighbors(u)) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ReferenceSsspWeighted(const EdgeList& graph,
                                            VertexId source,
                                            uint64_t max_weight) {
  const Csr csr = Csr::Build(graph);
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> dist(graph.num_vertices, kInf);
  using Entry = std::pair<uint64_t, VertexId>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;  // stale entry
    for (VertexId v : csr.Neighbors(u)) {
      const uint64_t nd = d + SsspEdgeWeight(u, v, max_weight);
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ReferenceKCore(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  std::vector<uint64_t> degree(n);
  std::vector<uint64_t> core(n, 0);
  std::vector<uint8_t> removed(n, 0);
  uint64_t alive = n;
  for (VertexId v = 0; v < n; ++v) degree[v] = csr.Degree(v);
  for (uint64_t k = 1; alive > 0; ++k) {
    // Synchronous peeling rounds, matching the engine's phase structure:
    // all sub-k vertices of a round are removed together, then their
    // decrements land, then the next round re-tests.
    for (;;) {
      std::vector<VertexId> batch;
      for (VertexId v = 0; v < n; ++v) {
        if (!removed[v] && degree[v] < k) batch.push_back(v);
      }
      if (batch.empty()) break;
      for (VertexId v : batch) {
        removed[v] = 1;
        core[v] = k - 1;
        --alive;
      }
      for (VertexId v : batch) {
        for (VertexId u : csr.Neighbors(v)) {
          if (!removed[u] && degree[u] > 0) --degree[u];
        }
      }
    }
  }
  return core;
}

std::vector<uint64_t> ReferenceLabelProp(const EdgeList& graph, int rounds) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = v;
  std::vector<uint64_t> best_key(n);
  std::vector<uint64_t> best_label(n);
  for (int t = 0; t < rounds; ++t) {
    std::fill(best_key.begin(), best_key.end(), kInf);
    std::fill(best_label.begin(), best_label.end(), kInf);
    for (VertexId u = 0; u < n; ++u) {
      const uint64_t label_u = labels[u];
      for (VertexId v : csr.Neighbors(u)) {
        const uint64_t key = LpEdgeKey(u, v, static_cast<uint64_t>(t));
        if (key < best_key[v] ||
            (key == best_key[v] && label_u < best_label[v])) {
          best_key[v] = key;
          best_label[v] = label_u;
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (best_key[v] != kInf) labels[v] = best_label[v];
    }
  }
  return labels;
}

std::vector<uint8_t> ReferenceMis(const EdgeList& graph) {
  const Csr csr = Csr::Build(graph);
  const uint64_t n = graph.num_vertices;
  std::vector<uint8_t> in_set(n, 0);
  std::vector<uint8_t> decided(n, 0);
  uint64_t undecided = n;
  for (uint64_t round = 0; undecided > 0; ++round) {
    // Priority phase: a vertex joins when it outranks (smaller priority
    // than) every undecided neighbor.
    std::vector<VertexId> joiners;
    for (VertexId v = 0; v < n; ++v) {
      if (decided[v]) continue;
      const uint64_t mine = MisPriority(v, round);
      bool wins = true;
      for (VertexId u : csr.Neighbors(v)) {
        if (!decided[u] && MisPriority(u, round) <= mine) {
          wins = false;
          break;
        }
      }
      if (wins) joiners.push_back(v);
    }
    for (VertexId v : joiners) {
      in_set[v] = 1;
      decided[v] = 1;
      --undecided;
    }
    // Knockout phase: undecided neighbors of new members drop out.
    for (VertexId v : joiners) {
      for (VertexId u : csr.Neighbors(v)) {
        if (!decided[u]) {
          decided[u] = 1;
          --undecided;
        }
      }
    }
  }
  return in_set;
}

std::vector<double> ReferenceLcc(const EdgeList& graph) {
  const std::vector<uint64_t> triangles =
      ReferencePerVertexTriangles(graph);
  const Csr csr = Csr::Build(graph);
  std::vector<double> lcc(graph.num_vertices, 0.0);
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    const uint64_t degree = csr.Degree(v);
    if (degree >= 2) {
      lcc[v] = 2.0 * static_cast<double>(triangles[v]) /
               (static_cast<double>(degree) *
                static_cast<double>(degree - 1));
    }
  }
  return lcc;
}

}  // namespace tgpp
