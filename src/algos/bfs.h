// Direction-optimizing breadth-first search (Beamer's hybrid BFS on the
// NWSM engine; docs/ALGORITHMS.md).
//
// Push supersteps are the classic frontier-driven level expansion: newly
// settled vertices scatter dist+1 to their neighbors. Pull supersteps
// (pull_scatter, chosen per superstep by the engine when
// EngineOptions::frontier.direction is kPull/kAuto) invert the loop:
// every unsettled vertex scans its own adjacency records for a frontier
// member and settles itself on the first hit — on the large middle
// frontiers of low-diameter graphs this touches a small fraction of the
// edges the push direction would stream, and ships zero update bytes.
//
// Pull correctness requires a symmetric graph (run MakeUndirected before
// loading), since a record's out-fragment then equals its in-fragment.
// Distances are schedule-independent (dist = BFS level regardless of
// direction or update order), so push, pull and auto runs — and runs at
// any machine count — produce bit-identical results.

#ifndef TGPP_ALGOS_BFS_H_
#define TGPP_ALGOS_BFS_H_

#include <limits>

#include "core/app.h"
#include "partition/partitioner.h"

namespace tgpp {

struct BfsAttr {
  uint64_t dist;
};

inline constexpr uint64_t kBfsUnreached =
    std::numeric_limits<uint64_t>::max();

// `source_old_id` is in the ORIGINAL (pre-renumbering) ID space.
inline KWalkApp<BfsAttr, uint64_t> MakeBfsApp(const PartitionedGraph* pg,
                                              VertexId source_old_id) {
  const VertexId source = pg->old_to_new[source_old_id];
  KWalkApp<BfsAttr, uint64_t> app;
  app.k = 1;
  app.mode = AdjMode::kPartial;
  app.apply_mode = ApplyMode::kUpdatedOnly;
  app.max_supersteps = static_cast<int>(pg->num_vertices) + 1;

  app.init = [source](VertexId vid, BfsAttr& attr) {
    attr.dist = (vid == source) ? 0 : kBfsUnreached;
    return vid == source;
  };
  app.adj_scatter[1] = [](ScatterContext<BfsAttr, uint64_t>& ctx, VertexId,
                          const BfsAttr& attr,
                          std::span<const VertexId> adj) {
    if (attr.dist == kBfsUnreached) return;
    const uint64_t candidate = attr.dist + 1;
    for (VertexId v : adj) ctx.Update(v, candidate);
  };
  // Pull direction: an unsettled vertex u adopts level superstep+1 as
  // soon as one neighbor is in the frontier (all frontier vertices hold
  // dist == superstep, so the candidate needs no lookup).
  app.pull_scatter = [](ScatterContext<BfsAttr, uint64_t>& ctx, VertexId u,
                        const BfsAttr&, std::span<const VertexId> adj,
                        const std::function<bool(VertexId)>& in_frontier) {
    const uint64_t candidate = static_cast<uint64_t>(ctx.superstep()) + 1;
    for (VertexId v : adj) {
      if (in_frontier(v)) {
        ctx.Update(u, candidate);
        return;
      }
    }
  };
  app.pull_done = [](const BfsAttr& attr) {
    return attr.dist != kBfsUnreached;
  };
  app.vertex_gather = [](uint64_t& acc, const uint64_t& in) {
    if (in < acc) acc = in;
  };
  app.vertex_apply = [](VertexId, BfsAttr& attr, const uint64_t* update) {
    if (update != nullptr && *update < attr.dist) {
      attr.dist = *update;
      return true;
    }
    return false;
  };
  return app;
}

}  // namespace tgpp

#endif  // TGPP_ALGOS_BFS_H_
