// Status and Result<T>: exception-free error handling for TurboGraph++.
//
// Follows the RocksDB/Arrow idiom: every fallible operation returns a
// `Status` (or a `Result<T>` carrying a value on success). Exceptions are
// not used anywhere in the library.

#ifndef TGPP_COMMON_STATUS_H_
#define TGPP_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tgpp {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kOutOfMemory,
  kCorruption,
  kTimeout,
  kNotSupported,
  kAborted,
  kInternal,
  kCancelled,
  // A fail-stop machine failure detected by the fabric heartbeat monitor
  // or a barrier deadline. Carries the lost machine id as a structured
  // payload (Status::machine_id()) so recovery code does not have to
  // parse it back out of the message text.
  kMachineLost,
};

// Human-readable name of a status code ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

// A Status is cheap to copy in the OK case (no allocation) and carries an
// explanatory message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  // `superstep` < 0 means "not attributable to a superstep" (e.g. a
  // heartbeat miss noticed outside a run).
  static Status MachineLost(int machine_id, int superstep) {
    std::string msg = "machine " + std::to_string(machine_id) + " lost";
    if (superstep >= 0) {
      msg += " at superstep " + std::to_string(superstep);
    }
    Status s(StatusCode::kMachineLost, std::move(msg));
    s.machine_id_ = machine_id;
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsMachineLost() const { return code_ == StatusCode::kMachineLost; }

  // True for transient failures a supervisor may retry: timeouts, I/O
  // errors, aborts (fabric shutdown races) and lost machines. Permanent
  // failures — bad arguments, corruption, cancellation, OOM — are not
  // retryable; re-running them wastes the queue's time.
  bool IsRetryable() const {
    return code_ == StatusCode::kTimeout || code_ == StatusCode::kIOError ||
           code_ == StatusCode::kAborted ||
           code_ == StatusCode::kMachineLost;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  // Lost machine id for kMachineLost statuses; -1 otherwise. Copies and
  // Result<T> propagation carry it along with the code and message.
  int machine_id() const { return machine_id_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  // Compares codes only — two errors with different messages are equal.
  // Intentional: call sites match on the kind of failure ("is this a
  // timeout?"), and messages carry context (paths, offsets) that would
  // make equality useless.
  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
  int32_t machine_id_ = -1;  // only meaningful when code_ == kMachineLost
};

// Process exit code for a terminal Status, shared by every tgpp CLI
// subcommand (documented in the usage text and docs/SERVICE.md):
//   0 ok, 3 timeout, 4 cancelled, 6 machine lost (or a job whose retries
//   were exhausted), 5 everything else (internal).
// Exit code 2 is reserved for usage errors (bad flags), which never reach
// a Status. Kept in the library so tests can pin the mapping.
int ExitCodeForStatus(const Status& status);

// Result<T> is a Status or a value. Modeled after arrow::Result /
// absl::StatusOr. T must be movable.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). Checked in debug builds (plain assert: logging.h
  // includes this header, so TGPP_DCHECK is unavailable here).
  T& value() & {
    assert(ok() && "Result::value() on error");
    return *value_;
  }
  const T& value() const& {
    assert(ok() && "Result::value() on error");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::move(*value_);
  }

  T& operator*() & {
    assert(ok() && "Result::operator* on error");
    return *value_;
  }
  const T& operator*() const& {
    assert(ok() && "Result::operator* on error");
    return *value_;
  }
  T* operator->() {
    assert(ok() && "Result::operator-> on error");
    return &*value_;
  }
  const T* operator->() const {
    assert(ok() && "Result::operator-> on error");
    return &*value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tgpp

// Propagates a non-OK Status to the caller.
#define TGPP_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::tgpp::Status _tgpp_status = (expr);         \
    if (!_tgpp_status.ok()) return _tgpp_status;  \
  } while (0)

#define TGPP_CONCAT_IMPL(a, b) a##b
#define TGPP_CONCAT(a, b) TGPP_CONCAT_IMPL(a, b)

// Evaluates a Result-returning expression; on success binds the value to
// `lhs`, otherwise returns the error Status to the caller.
#define TGPP_ASSIGN_OR_RETURN(lhs, expr)                              \
  TGPP_ASSIGN_OR_RETURN_IMPL(TGPP_CONCAT(_tgpp_result_, __LINE__), lhs, expr)

#define TGPP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#endif  // TGPP_COMMON_STATUS_H_
