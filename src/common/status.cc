#include "common/status.h"

namespace tgpp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kMachineLost:
      return "MachineLost";
  }
  return "Unknown";
}

int ExitCodeForStatus(const Status& status) {
  if (status.ok()) return 0;
  switch (status.code()) {
    case StatusCode::kTimeout:
      return 3;
    case StatusCode::kCancelled:
      return 4;
    case StatusCode::kMachineLost:
      return 6;
    default:
      return 5;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace tgpp
