#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace tgpp {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

// Strips leading directories for compact log lines.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(now).count();
  // One fprintf call keeps concurrent lines from interleaving.
  std::fprintf(stderr, "[%.3f %s %s:%d] %s\n", secs, LevelName(level),
               Basename(file), line, message.c_str());
}

LogStream::~LogStream() {
  EmitLog(level_, file_, line_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace tgpp
