// Minimal thread-safe leveled logging and check macros.
//
// TGPP_LOG(INFO) << "message";   -- stream-style logging
// TGPP_CHECK(cond) << "detail";  -- aborts the process on failure
// TGPP_CHECK_OK(status);         -- aborts if the status is not OK

#ifndef TGPP_COMMON_LOGGING_H_
#define TGPP_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

#include "common/status.h"

namespace tgpp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Messages below this level are suppressed. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Emits one line to stderr (single write; safe to call concurrently).
void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream();

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Makes a streamed LogStream usable inside a ternary whose other arm is
// (void)0: `operator&` binds looser than `<<`, tighter than `?:`.
struct Voidify {
  void operator&(LogStream&) {}
};

}  // namespace internal_logging
}  // namespace tgpp

#define TGPP_LOG(severity)                                          \
  ::tgpp::internal_logging::LogStream(::tgpp::LogLevel::k##severity, \
                                      __FILE__, __LINE__)

#define TGPP_CHECK(cond)                                                    \
  (cond) ? (void)0                                                          \
         : ::tgpp::internal_logging::Voidify() &                            \
               (::tgpp::internal_logging::LogStream(                        \
                    ::tgpp::LogLevel::kFatal, __FILE__, __LINE__)           \
                << "Check failed: " #cond " ")

#define TGPP_CHECK_OK(expr)                                                 \
  do {                                                                      \
    ::tgpp::Status _tgpp_check_status = (expr);                             \
    TGPP_CHECK(_tgpp_check_status.ok()) << _tgpp_check_status.ToString();   \
  } while (0)

#ifdef NDEBUG
#define TGPP_DCHECK(cond) \
  while (false) TGPP_CHECK(cond)
#else
#define TGPP_DCHECK(cond) TGPP_CHECK(cond)
#endif

#endif  // TGPP_COMMON_LOGGING_H_
