// CancelToken: cooperative cancellation + deadline for long-running work.
//
// A token is owned by whoever controls the work's lifetime (the job
// service, a test) and observed by the work itself (the engine checks it
// at superstep barriers). Observation is wait-free: two relaxed atomic
// loads plus, when a deadline is set, one steady_clock read.
//
// Lives in common/ (not service/) so core/engine.h can depend on it
// without a layering inversion: the engine only ever *reads* a token.

#ifndef TGPP_COMMON_CANCEL_TOKEN_H_
#define TGPP_COMMON_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace tgpp {

class CancelToken {
 public:
  CancelToken() = default;

  // Tokens are handed out by pointer; copying one would silently fork the
  // cancellation channel.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  // Arms an absolute deadline. Pass steady_clock::time_point; a token
  // with no deadline set never times out.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  // Convenience: deadline = now + timeout.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  bool deadline_passed() const {
    int64_t ns = deadline_ns_.load(std::memory_order_acquire);
    if (ns == kNoDeadline) return false;
    return std::chrono::steady_clock::now().time_since_epoch() >=
           std::chrono::nanoseconds(ns);
  }

  // OK while the work may continue; Cancelled / Timeout once it must
  // stop. Cancel wins over deadline when both have fired (an operator's
  // explicit cancel is the more informative cause).
  Status Check() const {
    if (cancelled()) return Status::Cancelled("cancel requested");
    if (deadline_passed()) return Status::Timeout("job deadline exceeded");
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace tgpp

#endif  // TGPP_COMMON_CANCEL_TOKEN_H_
