#include "common/fault_injector.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/trace.h"

namespace tgpp::fault {

const char* ActionName(Action action) {
  switch (action) {
    case Action::kIoError:
      return "io_error";
    case Action::kTimeout:
      return "timeout";
    case Action::kDrop:
      return "drop";
    case Action::kDelay:
      return "delay";
    case Action::kDuplicate:
      return "dup";
    case Action::kCrash:
      return "crash";
    case Action::kKill:
      return "kill";
  }
  return "?";
}

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

struct Rule {
  std::string site;
  int machine = -1;  // -1 = any machine
  Action action = Action::kIoError;
  uint64_t param_ms = 0;
  bool has_probability = false;
  uint64_t probability_bits = 0;  // fire iff 53-bit draw < this (p * 2^53)
  uint64_t nth = 0;               // 1-based; 0 = unset
  bool once = false;
  int superstep = -1;  // -1 = any superstep
  int index = 0;
  std::atomic<uint64_t> hits{0};
  std::atomic<bool> disarmed{false};
};

struct ArmedConfig {
  std::string spec;
  uint64_t seed = 0;
  // unique_ptr because Rule holds atomics (not movable).
  std::vector<std::unique_ptr<Rule>> rules;
};

// Mutated only at quiescence (Configure/Disarm contract); read lock-free
// from Hit().
ArmedConfig g_config;
std::atomic<int> g_superstep{-1};
std::atomic<uint64_t> g_injected{0};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool KnownSite(const std::string& site) {
  return site == "disk.read" || site == "disk.write" ||
         site == "disk.append" || site == "disk.sync" ||
         site == "fabric.send" || site == "crash" || site == "machine.kill";
}

bool ParseAction(const std::string& name, Action* out) {
  if (name == "io_error") {
    *out = Action::kIoError;
  } else if (name == "timeout") {
    *out = Action::kTimeout;
  } else if (name == "drop") {
    *out = Action::kDrop;
  } else if (name == "delay") {
    *out = Action::kDelay;
  } else if (name == "dup" || name == "duplicate") {
    *out = Action::kDuplicate;
  } else if (name == "crash") {
    *out = Action::kCrash;
  } else if (name == "kill") {
    *out = Action::kKill;
  } else {
    return false;
  }
  return true;
}

Action DefaultAction(const std::string& site) {
  if (site == "fabric.send") return Action::kDrop;
  if (site == "crash") return Action::kCrash;
  if (site == "machine.kill") return Action::kKill;
  return Action::kIoError;  // disk.*
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Status ParseRule(const std::string& text, int index, Rule* rule) {
  rule->index = index;
  std::string head = text;
  std::string triggers;
  if (size_t at = head.find('@'); at != std::string::npos) {
    triggers = head.substr(at + 1);
    head = head.substr(0, at);
  }

  // head := [machineN ':'] site [':' action]
  std::vector<std::string> parts;
  for (size_t pos = 0;;) {
    size_t colon = head.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(Trim(head.substr(pos)));
      break;
    }
    parts.push_back(Trim(head.substr(pos, colon - pos)));
    pos = colon + 1;
  }
  size_t i = 0;
  if (!parts.empty() && parts[0].rfind("machine", 0) == 0) {
    uint64_t m = 0;
    if (!ParseUint(parts[0].substr(7), &m)) {
      return Status::InvalidArgument("faults: bad machine scope in '" + text +
                                     "'");
    }
    rule->machine = static_cast<int>(m);
    ++i;
  }
  if (i >= parts.size() || parts[i].empty()) {
    return Status::InvalidArgument("faults: missing site in '" + text + "'");
  }
  rule->site = parts[i++];
  if (!KnownSite(rule->site)) {
    return Status::InvalidArgument("faults: unknown site '" + rule->site +
                                   "' in '" + text + "'");
  }
  if (i < parts.size()) {
    if (!ParseAction(parts[i], &rule->action)) {
      return Status::InvalidArgument("faults: unknown action '" + parts[i] +
                                     "' in '" + text + "'");
    }
    ++i;
  } else {
    rule->action = DefaultAction(rule->site);
  }
  if (i < parts.size()) {
    return Status::InvalidArgument("faults: trailing ':' fields in '" + text +
                                   "'");
  }

  // triggers := trigger {',' trigger}
  for (size_t pos = 0; pos < triggers.size();) {
    size_t comma = triggers.find(',', pos);
    std::string t = Trim(comma == std::string::npos
                             ? triggers.substr(pos)
                             : triggers.substr(pos, comma - pos));
    pos = (comma == std::string::npos) ? triggers.size() : comma + 1;
    if (t.empty()) continue;
    if (t == "once") {
      rule->once = true;
    } else if (t.rfind("p=", 0) == 0) {
      double p = 0;
      if (!ParseDouble(t.substr(2), &p) || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("faults: bad probability '" + t +
                                       "' in '" + text + "'");
      }
      rule->has_probability = true;
      // 53-bit threshold; p=1 must always fire.
      rule->probability_bits =
          p >= 1.0 ? (1ull << 53)
                   : static_cast<uint64_t>(p * 9007199254740992.0 /*2^53*/);
    } else if (t.rfind("n=", 0) == 0) {
      if (!ParseUint(t.substr(2), &rule->nth) || rule->nth == 0) {
        return Status::InvalidArgument("faults: bad occurrence '" + t +
                                       "' in '" + text + "'");
      }
    } else if (t.rfind("superstep=", 0) == 0) {
      uint64_t s = 0;
      if (!ParseUint(t.substr(10), &s)) {
        return Status::InvalidArgument("faults: bad superstep '" + t +
                                       "' in '" + text + "'");
      }
      rule->superstep = static_cast<int>(s);
    } else if (t.rfind("ms=", 0) == 0) {
      if (!ParseUint(t.substr(3), &rule->param_ms)) {
        return Status::InvalidArgument("faults: bad delay '" + t + "' in '" +
                                       text + "'");
      }
    } else {
      return Status::InvalidArgument("faults: unknown trigger '" + t +
                                     "' in '" + text + "'");
    }
  }
  return Status::OK();
}

}  // namespace

namespace internal {

std::optional<Injected> HitSlow(const char* site, int machine) {
  const int superstep = g_superstep.load(std::memory_order_relaxed);
  for (const auto& rule_ptr : g_config.rules) {
    Rule& rule = *rule_ptr;
    if (rule.disarmed.load(std::memory_order_relaxed)) continue;
    if (std::strcmp(site, rule.site.c_str()) != 0) continue;
    if (rule.machine >= 0 && rule.machine != machine) continue;
    if (rule.superstep >= 0 && rule.superstep != superstep) continue;
    const uint64_t k = rule.hits.fetch_add(1, std::memory_order_relaxed);
    bool fire;
    if (rule.once) {
      fire = (k == 0);
    } else if (rule.nth > 0) {
      fire = (k + 1 == rule.nth);
    } else if (rule.has_probability) {
      // Deterministic in (seed, rule index, hit number): replayable, and
      // independent across rules sharing a site.
      const uint64_t draw =
          Mix64(g_config.seed ^
                (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(rule.index + 1)) ^
                k) >>
          11;
      fire = draw < rule.probability_bits;
    } else {
      fire = true;
    }
    if (!fire) continue;
    if (rule.superstep >= 0) {
      // One-shot per gate: a superstep replayed during recovery must not
      // re-trigger the same fault (the crash would refire forever).
      rule.disarmed.store(true, std::memory_order_relaxed);
    }
    g_injected.fetch_add(1, std::memory_order_relaxed);
    trace::Instant("fault.inject", "fault", "rule",
                   static_cast<uint64_t>(rule.index), "machine",
                   static_cast<uint64_t>(machine < 0 ? 0xffffffffu : machine));
    return Injected{rule.action, rule.param_ms, rule.index};
  }
  return std::nullopt;
}

}  // namespace internal

Status Configure(const std::string& spec, uint64_t seed) {
  ArmedConfig next;
  next.spec = spec;
  next.seed = seed;
  for (size_t pos = 0; pos < spec.size();) {
    size_t semi = spec.find(';', pos);
    std::string text = Trim(semi == std::string::npos
                                ? spec.substr(pos)
                                : spec.substr(pos, semi - pos));
    pos = (semi == std::string::npos) ? spec.size() : semi + 1;
    if (text.empty()) continue;
    auto rule = std::make_unique<Rule>();
    TGPP_RETURN_IF_ERROR(
        ParseRule(text, static_cast<int>(next.rules.size()), rule.get()));
    next.rules.push_back(std::move(rule));
  }
  internal::g_armed.store(false, std::memory_order_relaxed);
  g_config = std::move(next);
  g_superstep.store(-1, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
  if (!g_config.rules.empty()) {
    internal::g_armed.store(true, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Disarm() {
  internal::g_armed.store(false, std::memory_order_relaxed);
  g_config = ArmedConfig{};
  g_superstep.store(-1, std::memory_order_relaxed);
}

void SetSuperstep(int superstep) {
  g_superstep.store(superstep, std::memory_order_relaxed);
}

int CurrentSuperstep() { return g_superstep.load(std::memory_order_relaxed); }

std::string ActiveSpec() { return Armed() ? g_config.spec : std::string(); }

uint64_t ActiveSeed() { return Armed() ? g_config.seed : 0; }

uint64_t InjectedCount() {
  return g_injected.load(std::memory_order_relaxed);
}

bool SpecContainsSite(const char* site) {
  if (!Armed()) return false;
  for (const auto& rule : g_config.rules) {
    if (rule->site == site) return true;
  }
  return false;
}

}  // namespace tgpp::fault
