// Deterministic fault injection (docs/FAULTS.md).
//
// The paper inherits reliability from MPI and never loses a machine
// (A.3); this framework is how the reproduction earns the same property
// instead of assuming it. Faults are injected at *named sites* compiled
// into the substrates (disk reads/writes/syncs, fabric sends, the
// per-machine crash point at superstep start), armed at runtime from a
// spec string, and the system is expected to survive everything the
// framework can inject: transient disk errors are retried by
// `DiskDevice`, lost/late messages surface as `Status::Timeout` through
// `Fabric::RecvFor`, and machine crashes roll the engine back to the
// last superstep-boundary checkpoint (core/engine.h).
//
// Spec grammar (one rule per ';'):
//
//   rule    := [scope ':'] site [':' action] ['@' trigger {',' trigger}]
//   scope   := 'machine' INT          (default: every machine)
//   site    := disk.read | disk.write | disk.append | disk.sync
//            | fabric.send | crash | machine.kill
//   action  := io_error | timeout | drop | delay | dup | crash | kill
//              (optional when the site implies it, e.g. `crash`)
//   trigger := 'p=' FLOAT             fire each hit with probability p
//            | 'n=' INT               fire on the nth matching hit (1-based)
//            | 'once'                 fire on the first matching hit
//            | 'superstep=' INT       gate on the engine's superstep clock
//            | 'ms=' INT              parameter for `delay`
//
// Examples:
//   disk.read:io_error@p=0.001
//   fabric.send:drop@n=500
//   machine2:crash@superstep=3
//   machine1:machine.kill@superstep=2
//
// `crash` vs `machine.kill`: a crash is cooperative — the machine notices
// it at superstep start and walks the superstep skeleton reporting
// failure, so barriers still complete. A kill is fail-stop — the machine
// stops servicing fabric sends/recvs and barriers entirely; survivors
// only learn of it through the fabric heartbeat monitor (net/fabric.h)
// and see `Status::MachineLost`.
//
// Semantics:
//  - A rule with no p/n/once trigger fires on every matching hit.
//  - `n=` and `once` rules fire exactly once, ever.
//  - `superstep=`-gated rules disarm after their first firing, so a
//    superstep replayed during recovery does not re-trigger the fault.
//  - `p=` decisions are a pure function of (seed, rule index, per-rule
//    hit counter): the same seed over the same hit sequence reproduces
//    the same firing pattern bit for bit.
//
// Cost: when disarmed, `Hit()` is one relaxed atomic load. When armed,
// each hit walks the (short) rule list; every firing emits a
// `fault.inject` instant event into the execution tracer (util/trace.h).
//
// Thread safety: `Hit()` is safe from any thread. `Configure()` /
// `Disarm()` must run at quiescence (no concurrent traffic through
// injected sites), e.g. between queries — the normal place to arm faults.

#ifndef TGPP_COMMON_FAULT_INJECTOR_H_
#define TGPP_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace tgpp::fault {

enum class Action : uint8_t {
  kIoError,    // disk.*: fail the attempt with a transient kIOError
  kTimeout,    // disk.*: fail the operation with kTimeout (not retried)
  kDrop,       // fabric.send: the message is lost
  kDelay,      // fabric.send / disk.*: stall for `param_ms` milliseconds
  kDuplicate,  // fabric.send: the message is delivered twice
  kCrash,      // crash site: the machine loses this superstep
  kKill,       // machine.kill: fail-stop — the machine goes silent
};

const char* ActionName(Action action);

// What an armed rule decided at a site.
struct Injected {
  Action action = Action::kIoError;
  uint64_t param_ms = 0;  // delay parameter (ms=); 0 otherwise
  int rule_index = 0;     // position in the armed spec, for logs/traces
};

namespace internal {
extern std::atomic<bool> g_armed;
std::optional<Injected> HitSlow(const char* site, int machine);
}  // namespace internal

// True when a spec is armed. One relaxed atomic load.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

// The per-site check. `machine` is the simulated machine the operation
// belongs to (-1 when unknown; scoped rules then never match). Returns
// the first firing rule's decision, or nullopt.
inline std::optional<Injected> Hit(const char* site, int machine = -1) {
  if (!Armed()) return std::nullopt;
  return internal::HitSlow(site, machine);
}

// Parses `spec` and arms it (replacing any previous spec). An empty spec
// disarms. Probability decisions derive from `seed` deterministically.
Status Configure(const std::string& spec, uint64_t seed = 42);

// Disarms all rules (Hit() returns nullopt until the next Configure).
void Disarm();

// The engine's superstep clock, consulted by `superstep=` triggers.
// -1 (the initial value) matches no gated rule.
void SetSuperstep(int superstep);
int CurrentSuperstep();

// The armed spec string and seed ("" / 0 when disarmed) — recorded by
// the bench harness into its output JSON.
std::string ActiveSpec();
uint64_t ActiveSeed();

// Total rule firings since the last Configure().
uint64_t InjectedCount();

// True when the armed spec contains a rule for `site` (fired or not).
// The engine uses this to auto-enable heartbeat detection whenever a
// `machine.kill` rule is armed, so an unconfigured run cannot wedge.
bool SpecContainsSite(const char* site);

}  // namespace tgpp::fault

#endif  // TGPP_COMMON_FAULT_INJECTOR_H_
